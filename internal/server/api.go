package server

import "rulematch/internal/core"

// Wire types of the v1 HTTP/JSON API. All endpoints speak JSON except
// GET .../snapshot, which streams the binary persist format.

// CreateSessionRequest creates a named debug session, either from
// tables + rules + blocking (a cold start: the server compiles, runs
// the full materializing pass and holds the state), or from a persist
// snapshot (base64 in JSON) taken by emmatch -save, emdebug save or a
// previous GET .../snapshot — then only the tables are needed.
type CreateSessionRequest struct {
	Name string `json:"name"`
	// Tenant optionally attributes the session to a tenant for
	// aggregate edit-quota accounting (emserve -max-tenant-edits).
	Tenant string `json:"tenant,omitempty"`
	// TableA and TableB are CSV with the id in the first column — the
	// same files the CLIs read, inlined.
	TableA string `json:"tableA"`
	TableB string `json:"tableB"`
	// Rules is the matching function in DSL form. Ignored when
	// Snapshot is set (the snapshot carries the function).
	Rules string `json:"rules,omitempty"`
	// Exactly one of Block (attribute-equivalence) or BlockTokens
	// (token-overlap) selects the blocker. Ignored with Snapshot.
	Block       string `json:"block,omitempty"`
	BlockTokens string `json:"blockTokens,omitempty"`
	// Snapshot is a persist-format session snapshot; encoding/json
	// transports []byte as base64.
	Snapshot []byte `json:"snapshot,omitempty"`
	// Config optionally overrides the server's engine defaults for
	// this session.
	Config *ConfigPatch `json:"config,omitempty"`
}

// ConfigPatch is a partial engine configuration: nil fields keep the
// server default.
type ConfigPatch struct {
	Parallel     *int  `json:"parallel,omitempty"`
	Batch        *bool `json:"batch,omitempty"`
	DictProfiles *bool `json:"dictProfiles,omitempty"`
	ValueCache   *bool `json:"valueCache,omitempty"`
	Profiles     *bool `json:"profiles,omitempty"`
	BlockSize    *int  `json:"blockSize,omitempty"`
}

// Apply overlays the patch on cfg.
func (p *ConfigPatch) Apply(cfg *core.Config) {
	if p == nil {
		return
	}
	if p.Parallel != nil {
		cfg.Workers = *p.Parallel
	}
	if p.Batch != nil {
		if *p.Batch {
			cfg.Engine = core.EngineBatch
		} else {
			cfg.Engine = core.EngineScalar
		}
	}
	if p.DictProfiles != nil {
		cfg.DictProfiles = *p.DictProfiles
	}
	if p.ValueCache != nil {
		cfg.ValueCache = *p.ValueCache
	}
	if p.Profiles != nil {
		cfg.ProfileCache = *p.Profiles
	}
	if p.BlockSize != nil {
		cfg.BlockSize = *p.BlockSize
	}
}

// timeLayout formats lifecycle timestamps on the wire.
const timeLayout = "2006-01-02T15:04:05.999999999Z07:00" // time.RFC3339Nano

// SessionInfo summarizes one session. The counts come from the
// store's cached metadata, so listing sessions never forces an
// evicted one back into memory.
type SessionInfo struct {
	Name    string `json:"name"`
	Pairs   int    `json:"pairs"`
	Rules   int    `json:"rules"`
	Matches int    `json:"matches"`
	LastOp  string `json:"lastOp"`
	// State is "resident" (in memory) or "evicted" (compacted to its
	// durable snapshot; the next touch reloads it transparently).
	State string `json:"state"`
	// ResidentBytes is the session's §7.4 memory footprint (memo +
	// bitmaps) as of the last accounting event; 0 while evicted.
	ResidentBytes int64 `json:"residentBytes"`
	// Created and LastTouch are RFC 3339 timestamps; LastTouch moves
	// on every acquisition (any endpoint under the session's name).
	Created   string `json:"created,omitempty"`
	LastTouch string `json:"lastTouch,omitempty"`
	// Evictions and Reloads count this session's round trips through
	// the evicted state.
	Evictions uint64 `json:"evictions"`
	Reloads   uint64 `json:"reloads"`
}

// SessionList is the GET /v1/sessions response.
type SessionList struct {
	Sessions []SessionInfo `json:"sessions"`
}

// PredInfo describes one predicate of one rule.
type PredInfo struct {
	Index     int     `json:"index"`
	Key       string  `json:"key"`
	Sim       string  `json:"sim"`
	AttrA     string  `json:"attrA"`
	AttrB     string  `json:"attrB"`
	Op        string  `json:"op"`
	Threshold float64 `json:"threshold"`
	// FalseCount is how many candidate pairs have a recorded false
	// bit for this predicate — the debugger's "which predicate kills
	// this rule" signal.
	FalseCount int `json:"falseCount"`
}

// RuleInfo describes one rule in current evaluation order.
type RuleInfo struct {
	Index int        `json:"index"`
	Name  string     `json:"name"`
	Preds []PredInfo `json:"preds"`
	// TrueCount is how many matched pairs this rule owns.
	TrueCount int `json:"trueCount"`
}

// RuleList is the GET .../rules response.
type RuleList struct {
	Rules []RuleInfo `json:"rules"`
}

// EditRequest is one incremental rule-set operation (the paper's
// Algorithms 7–10). Rules are addressed by index or by name.
type EditRequest struct {
	// Op is one of: add_predicate, remove_predicate, tighten, relax,
	// set_threshold, add_rule, remove_rule.
	Op       string `json:"op"`
	Rule     int    `json:"rule"`
	RuleName string `json:"ruleName,omitempty"`
	Pred     int    `json:"pred"`
	// Predicate is DSL source (e.g. "jaccard(name, name) >= 0.4") for
	// add_predicate.
	Predicate string `json:"predicate,omitempty"`
	// RuleSrc is DSL source (e.g. "rule r9: ...") for add_rule.
	RuleSrc string `json:"ruleSrc,omitempty"`
	// Threshold for tighten / relax / set_threshold.
	Threshold float64 `json:"threshold"`
}

// OpReport mirrors incremental.OpReport on the wire.
type OpReport struct {
	Op             string     `json:"op"`
	PairsExamined  int        `json:"pairsExamined"`
	OwnershipMoves int        `json:"ownershipMoves"`
	PairsAdded     int        `json:"pairsAdded,omitempty"`
	PairsRemoved   int        `json:"pairsRemoved,omitempty"`
	Stats          core.Stats `json:"stats"`
}

// EditResponse reports the applied operation and the resulting match
// count.
type EditResponse struct {
	Report  OpReport `json:"report"`
	Matches int      `json:"matches"`
	Rules   int      `json:"rules"`
}

// RecordRow is one record on the wire: its ID plus values aligned
// with the table's attribute order (the CSV column order, id column
// excluded).
type RecordRow struct {
	ID     string   `json:"id"`
	Values []string `json:"values"`
}

// RecordsRequest is the POST .../records body: a batch of record
// appends and/or deletes against the session's tables. Deletes apply
// before appends, so one request can retire records without ever
// pairing the new records against the retired ones. The whole request
// is validated up front — on a non-2xx response nothing was applied.
type RecordsRequest struct {
	AppendA []RecordRow `json:"appendA,omitempty"`
	AppendB []RecordRow `json:"appendB,omitempty"`
	DeleteA []string    `json:"deleteA,omitempty"`
	DeleteB []string    `json:"deleteB,omitempty"`
}

// RecordsResponse reports the applied record operations. DeleteReport
// and AppendReport are present only when the request carried that kind
// of work; AppendReport.PairsExamined counts exactly the delta pairs
// evaluated (the incrementality signal).
type RecordsResponse struct {
	DeleteReport *OpReport `json:"deleteReport,omitempty"`
	AppendReport *OpReport `json:"appendReport,omitempty"`
	Appended     int       `json:"appended"`
	Deleted      int       `json:"deleted"`
	Matches      int       `json:"matches"`
	// Pairs counts live candidate pairs (tombstoned pairs excluded).
	Pairs int `json:"pairs"`
}

// SweepRequest evaluates candidate thresholds for one predicate
// without changing session state. Give explicit Thresholds, or Steps
// for an even spread across (0,1).
type SweepRequest struct {
	Rule       int       `json:"rule"`
	RuleName   string    `json:"ruleName,omitempty"`
	Pred       int       `json:"pred"`
	Thresholds []float64 `json:"thresholds,omitempty"`
	Steps      int       `json:"steps,omitempty"`
}

// SweepPoint is one evaluated threshold.
type SweepPoint struct {
	Threshold float64 `json:"threshold"`
	Matches   int     `json:"matches"`
}

// SweepResponse is the POST .../sweep response.
type SweepResponse struct {
	Points []SweepPoint `json:"points"`
}

// MatchedPair is one matched candidate pair.
type MatchedPair struct {
	Pair int    `json:"pair"` // candidate pair index
	IDA  string `json:"idA"`
	IDB  string `json:"idB"`
	// Rule is the name of the owning rule (the first rule that
	// evaluates true for the pair).
	Rule string `json:"rule"`
}

// MatchPage is one page of matched pairs. NextCursor is an opaque
// token: pass it back as ?cursor= for the next page; empty on the last
// page. The token survives session eviction/reload and replica
// failover — it addresses state both nodes hold identically.
type MatchPage struct {
	Matches    []MatchedPair `json:"matches"`
	NextCursor string        `json:"nextCursor,omitempty"`
	Total      int           `json:"total"`
}

// StatsResponse is the GET .../stats response: the session's memory
// footprint (§7.4) and cumulative work counters.
type StatsResponse struct {
	Pairs       int        `json:"pairs"`
	Rules       int        `json:"rules"`
	Matches     int        `json:"matches"`
	MemoBytes   int64      `json:"memoBytes"`
	BitmapBytes int64      `json:"bitmapBytes"`
	MemoEntries int64      `json:"memoEntries"`
	Stats       core.Stats `json:"stats"`
	// MemoHitRate is hits / (hits + computes) over the session's
	// lifetime; 0 when nothing has been looked up yet.
	MemoHitRate float64  `json:"memoHitRate"`
	LastOp      OpReport `json:"lastOp"`
	// Durable reports whether the session is backed by a snapshot +
	// edit journal on disk. False on servers without a datadir, and on
	// sessions degraded to ephemeral after a persistence failure —
	// PersistErr then carries the reason.
	Durable    bool   `json:"durable"`
	PersistErr string `json:"persistError,omitempty"`
	// Seq is the journal sequence of the last committed edit;
	// JournalBytes the current journal size. Both zero when not durable.
	Seq          uint64 `json:"seq,omitempty"`
	JournalBytes int64  `json:"journalBytes,omitempty"`
	// Lifecycle accounting. State is always "resident" here — fetching
	// stats touches the session, reloading it if it was evicted;
	// Evictions/Reloads count its past round trips through the evicted
	// state. Edits counts edit-mode acquisitions against MaxEdits
	// (0 = unlimited).
	State         string `json:"state"`
	ResidentBytes int64  `json:"residentBytes"`
	LastTouch     string `json:"lastTouch,omitempty"`
	Evictions     uint64 `json:"evictions"`
	Reloads       uint64 `json:"reloads"`
	Edits         int64  `json:"edits"`
	MaxEdits      int64  `json:"maxEdits,omitempty"`
	// Tenant accounting: the tenant the session was admitted under and
	// its cumulative edit spend against the per-tenant quota
	// (0 = unlimited).
	Tenant         string `json:"tenant,omitempty"`
	TenantEdits    int64  `json:"tenantEdits,omitempty"`
	MaxTenantEdits int64  `json:"maxTenantEdits,omitempty"`
	// Replication is present on replicas (and on primaries for
	// symmetry): role, the primary's URL, and the follower's progress.
	Replication *ReplicationStats `json:"replication,omitempty"`
}

// ReplicationStats reports a node's replication posture for one
// session. On a replica, AppliedSeq is the last WAL sequence replayed
// into the local state, PrimarySeq the primary's last known sequence,
// and Lag their difference — 0 means caught up as of the last poll.
type ReplicationStats struct {
	Role       string `json:"role"` // "primary" or "replica"
	PrimaryURL string `json:"primaryUrl,omitempty"`
	AppliedSeq uint64 `json:"appliedSeq,omitempty"`
	PrimarySeq uint64 `json:"primarySeq,omitempty"`
	Lag        uint64 `json:"lag"`
	// Epoch is the replication epoch the node's journal stamps (on a
	// primary). Promotion bumps it; see POST /v1/promote.
	Epoch uint64 `json:"epoch,omitempty"`
}

// PromoteResponse is the POST /v1/promote response: the new epoch plus
// every session whose history now continues on this node.
type PromoteResponse struct {
	Epoch    uint64                `json:"epoch"`
	Sessions []PromotedSessionInfo `json:"sessions"`
}

// BootstrapResponse is the GET .../bootstrap payload: the base table
// CSVs plus a snapshot of the current state stamped with the journal
// sequence it covers. encoding/json transports the []byte fields as
// base64. A follower loads Snapshot against TableA/TableB and then
// tails GET .../wal?from=<seq>.
type BootstrapResponse struct {
	Name string `json:"name"`
	// Tenant is the tenant the session was admitted under, replicated
	// so follower stats attribute the session the same way.
	Tenant string `json:"tenant,omitempty"`
	// Seq is the journal sequence the snapshot covers: the first WAL
	// record to apply on top is Seq+1.
	Seq uint64 `json:"seq"`
	// Epoch is the replication epoch the session's journal is writing
	// under. A follower refuses a bootstrap whose epoch is below one it
	// has already seen — that would regress it onto a deposed
	// primary's fork.
	Epoch    uint64 `json:"epoch"`
	TableA   []byte `json:"tableA"`
	TableB   []byte `json:"tableB"`
	Snapshot []byte `json:"snapshot"`
}

// VerifyResponse is the POST .../verify response.
type VerifyResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// RunResponse is the POST .../run response.
type RunResponse struct {
	Report  OpReport `json:"report"`
	Matches int      `json:"matches"`
}
