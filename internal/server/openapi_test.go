package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestOpenAPICoversRoutes proves the served document and the mux agree
// because they are generated from the same table: every route spec
// appears as a path+method, every declared error code comes from the
// stable table, and the envelope schema is published.
func TestOpenAPICoversRoutes(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/openapi.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("openapi: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OpenAPI    string                    `json:"openapi"`
		Paths      map[string]map[string]any `json:"paths"`
		Components struct {
			Schemas map[string]any `json:"schemas"`
		} `json:"components"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("openapi does not parse: %v", err)
	}
	if !strings.HasPrefix(doc.OpenAPI, "3.") {
		t.Fatalf("openapi version %q", doc.OpenAPI)
	}
	if err := validateRouteCodes(routes()); err != nil {
		t.Fatal(err)
	}
	for _, rt := range routes() {
		item, ok := doc.Paths[rt.Path]
		if !ok {
			t.Fatalf("path %s missing from document", rt.Path)
		}
		op, ok := item[strings.ToLower(rt.Method)].(map[string]any)
		if !ok {
			t.Fatalf("%s %s missing from document", rt.Method, rt.Path)
		}
		if op["summary"] == "" {
			t.Fatalf("%s %s has no summary", rt.Method, rt.Path)
		}
		// Every operation carries the envelope as its default response.
		responses, _ := op["responses"].(map[string]any)
		if _, ok := responses["default"]; !ok {
			t.Fatalf("%s %s has no default error response", rt.Method, rt.Path)
		}
	}
	// Both request and response wire types made it into components.
	for _, want := range []string{"ErrorResponse", "CreateSessionRequest", "SessionInfo", "MatchPage", "StatsResponse", "BootstrapResponse", "ReplicationStats", "EditRequest"} {
		if _, ok := doc.Components.Schemas[want]; !ok {
			t.Fatalf("schema %s missing from components", want)
		}
	}
	// And the table covers the mux: every documented path answers
	// something other than the mux's own 404/405 for its method. A
	// handler 404 (unknown session) carries the JSON envelope, which the
	// mux's plain-text 404 does not.
	for _, rt := range routes() {
		path := strings.ReplaceAll(rt.Path, "{name}", "zz-missing")
		req, _ := http.NewRequest(rt.Method, ts.URL+path, strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound && !strings.Contains(string(body), `"error"`) {
			t.Fatalf("%s %s: mux-level 404 — route not registered", rt.Method, rt.Path)
		}
		if resp.StatusCode == http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: method not registered", rt.Method, rt.Path)
		}
	}
}

// TestCursorStableAcrossEvictReload proves an opaque cursor handed out
// before a session was evicted still addresses the same position after
// the transparent reload: the walk sees every match exactly once even
// though the session left memory mid-walk.
func TestCursorStableAcrossEvictReload(t *testing.T) {
	ts, srv := newDurableServer(t, t.TempDir(), nil)
	createSession(t, ts, "cur")

	var first MatchPage
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/cur/matches?limit=2", nil, &first); code != http.StatusOK {
		t.Fatalf("first page: status %d", code)
	}
	if first.NextCursor == "" {
		t.Fatal("fixture too small: one page holds everything")
	}

	// Force the session out of memory: budget for ~1.5 sessions, then
	// admit another so the LRU evictor pushes cur out.
	per := listSessions(t, ts)["cur"].ResidentBytes
	if per == 0 {
		t.Fatal("test setup: zero resident bytes")
	}
	srv.SetLimits(0, per+per/2, 0)
	createSession(t, ts, "pressure")
	if st := listSessions(t, ts)["cur"].State; st != "evicted" {
		t.Fatalf("session cur is %q under budget pressure, want evicted", st)
	}

	// The pre-eviction cursor resumes the walk over the reloaded state.
	seen := map[int]bool{}
	for _, m := range first.Matches {
		seen[m.Pair] = true
	}
	cursor := first.NextCursor
	for cursor != "" {
		var page MatchPage
		if code := doJSON(t, "GET", ts.URL+"/v1/sessions/cur/matches?limit=2&cursor="+cursor, nil, &page); code != http.StatusOK {
			t.Fatalf("page after reload: status %d", code)
		}
		for _, m := range page.Matches {
			if seen[m.Pair] {
				t.Fatalf("pair %d returned twice across the eviction", m.Pair)
			}
			seen[m.Pair] = true
		}
		if len(seen) == first.Total {
			break
		}
		cursor = page.NextCursor
	}
	if len(seen) != first.Total {
		t.Fatalf("walk across eviction saw %d of %d matches", len(seen), first.Total)
	}
}
