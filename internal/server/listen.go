package server

import (
	"fmt"
	"net"
	"os"
	"strings"
)

// Listen opens the listener named by spec. Two forms:
//
//	host:port          — TCP (the default form, e.g. ":8080")
//	unix:/path/to.sock — a Unix domain socket at that path
//
// A stale socket file from a previous unclean shutdown is removed
// before binding — but only if nothing is listening on it, so two
// servers can't silently steal each other's socket. Callers own
// closing the listener; the socket file is unlinked on Close by the
// net package.
func Listen(spec string) (net.Listener, error) {
	path, ok := strings.CutPrefix(spec, "unix:")
	if !ok {
		return net.Listen("tcp", spec)
	}
	if path == "" {
		return nil, fmt.Errorf("listen spec %q: empty socket path", spec)
	}
	if _, err := os.Stat(path); err == nil {
		// Something is there. Live listener → refuse; stale socket from
		// a crashed process → connect fails and we reclaim the path.
		if c, err := net.Dial("unix", path); err == nil {
			_ = c.Close()
			return nil, fmt.Errorf("listen unix %s: already in use", path)
		}
		if err := os.Remove(path); err != nil {
			return nil, fmt.Errorf("remove stale socket %s: %w", path, err)
		}
	}
	return net.Listen("unix", path)
}
