package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"rulematch/internal/core"
	"rulematch/internal/faultio"
	"rulematch/internal/wal"
)

// newDurableServer builds a server persisting to dir over fsys.
func newDurableServer(t *testing.T, dir string, fsys faultio.FS) (*httptest.Server, *Server) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.CheckCacheFirst = true
	cfg.Workers = 2
	srv := New(cfg)
	if err := srv.EnableDurability(Durability{Dir: dir, Policy: wal.SyncPolicy{Mode: wal.SyncAlways}, FS: fsys}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RecoverSessions(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// durableEdits exercises every edit kind; each one must journal.
func durableEdits() []EditRequest {
	return []EditRequest{
		{Op: "set_threshold", Rule: 1, Pred: 0, Threshold: 0.6},
		{Op: "add_predicate", Rule: 0, Predicate: "exact_match(city, city) >= 1"},
		{Op: "relax", Rule: 0, Pred: 0, Threshold: 0.85},
		{Op: "add_rule", RuleSrc: "rule r3: jaccard(name, name) >= 0.4"},
		{Op: "tighten", Rule: 2, Pred: 0, Threshold: 0.5},
		{Op: "remove_predicate", Rule: 0, Pred: 2},
		{Op: "remove_rule", Rule: 1},
	}
}

func applyEdits(t *testing.T, ts *httptest.Server, name string, edits []EditRequest) {
	t.Helper()
	for _, e := range edits {
		var out EditResponse
		if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+name+"/edits", e, &out); code != http.StatusOK {
			t.Fatalf("edit %+v: status %d", e, code)
		}
	}
}

func getSnapshot(t *testing.T, ts *httptest.Server, name string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + name + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDurableEditRestartRecover is the kill -9 round trip: edits are
// journaled as they commit, the server is torn down without any
// graceful shutdown, and a fresh server over the same datadir recovers
// a byte-identical session that keeps accepting edits.
func TestDurableEditRestartRecover(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newDurableServer(t, dir, nil)
	createSession(t, ts, "s1")
	applyEdits(t, ts, "s1", durableEdits())
	mustVerify(t, ts, "s1", "before kill")
	before := getSnapshot(t, ts, "s1")
	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/v1/sessions/s1/stats", nil, &st)
	if !st.Durable {
		t.Fatalf("session not durable: %+v", st)
	}
	if st.Seq != uint64(len(durableEdits())) {
		t.Fatalf("seq %d, want %d", st.Seq, len(durableEdits()))
	}
	// Kill: no Close, no journal sync beyond the per-edit fsyncs.
	ts.Close()

	ts2, srv2 := newDurableServer(t, dir, nil)
	if srv2.SessionCount() != 1 {
		t.Fatalf("recovered %d sessions, want 1", srv2.SessionCount())
	}
	mustVerify(t, ts2, "s1", "after recovery")
	after := getSnapshot(t, ts2, "s1")
	if string(before) != string(after) {
		t.Fatal("recovered session snapshot differs from the pre-kill one")
	}
	// The recovered session keeps journaling.
	applyEdits(t, ts2, "s1", []EditRequest{{Op: "set_threshold", Rule: 0, Pred: 0, Threshold: 0.8}})
	mustVerify(t, ts2, "s1", "after post-recovery edit")
	doJSON(t, "GET", ts2.URL+"/v1/sessions/s1/stats", nil, &st)
	if st.Seq != uint64(len(durableEdits()))+1 {
		t.Fatalf("post-recovery seq %d", st.Seq)
	}
}

// TestDurableDelete removes the on-disk session directory with the
// session.
func TestDurableDelete(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newDurableServer(t, dir, nil)
	createSession(t, ts, "gone")
	if _, err := os.Stat(filepath.Join(dir, "gone", wal.SnapshotFile)); err != nil {
		t.Fatalf("durable session has no snapshot: %v", err)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/gone", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "gone")); !os.IsNotExist(err) {
		t.Fatalf("session directory survived delete: %v", err)
	}
}

// TestDurableNameValidation rejects names that cannot be directories.
func TestDurableNameValidation(t *testing.T) {
	ts, _ := newDurableServer(t, t.TempDir(), nil)
	var e ErrorResponse
	code := doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{
		Name: "../escape", TableA: tableACSV, TableB: tableBCSV,
		Rules: rulesDSL, Block: "cat",
	}, &e)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
}

// TestDurableDegradesToEphemeral proves the graceful-degradation path:
// when journaling starts failing mid-session, edits keep succeeding,
// the session flips to ephemeral and /stats says why.
func TestDurableDegradesToEphemeral(t *testing.T) {
	// Dry run: count the filesystem ops a create consumes, so the
	// injected failure lands on the first edit's journal append.
	dry := &faultio.Injector{Base: faultio.OS}
	tsDry, _ := newDurableServer(t, t.TempDir(), dry)
	createSession(t, tsDry, "s1")
	tsDry.Close()

	inj := &faultio.Injector{Base: faultio.OS, Mode: faultio.ModeCrash, At: dry.Ops() + 1}
	ts, _ := newDurableServer(t, t.TempDir(), inj)
	createSession(t, ts, "s1")
	var out EditResponse
	code := doJSON(t, "POST", ts.URL+"/v1/sessions/s1/edits",
		EditRequest{Op: "set_threshold", Rule: 1, Pred: 0, Threshold: 0.6}, &out)
	if code != http.StatusOK {
		t.Fatalf("edit during journal failure: status %d (the edit itself must survive)", code)
	}
	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/v1/sessions/s1/stats", nil, &st)
	if st.Durable {
		t.Fatal("session still claims durable after journal failure")
	}
	if st.PersistErr == "" {
		t.Fatal("degraded session reports no persistError")
	}
	// Later edits still work, just unpersisted.
	applyEdits(t, ts, "s1", []EditRequest{{Op: "relax", Rule: 1, Pred: 0, Threshold: 0.5}})
	mustVerify(t, ts, "s1", "after degradation")
}

// TestEnableDurabilityUnwritable surfaces an unusable datadir as an
// error the caller can log and degrade on.
func TestEnableDurabilityUnwritable(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := New(core.DefaultConfig())
	if err := srv.EnableDurability(Durability{Dir: file, Policy: wal.SyncPolicy{Mode: wal.SyncAlways}}); err == nil {
		t.Fatal("EnableDurability accepted a plain file as datadir")
	}
	if srv.Durable() {
		t.Fatal("server claims durable after failed enable")
	}
}

// TestRecoverSkipsCorruptDirectory: a mangled session directory is
// logged and skipped, never blocking the healthy ones.
func TestRecoverSkipsCorruptDirectory(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newDurableServer(t, dir, nil)
	createSession(t, ts, "good")
	ts.Close()
	bad := filepath.Join(dir, "bad")
	if err := os.MkdirAll(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, wal.SnapshotFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts2, srv2 := newDurableServer(t, dir, nil)
	if srv2.SessionCount() != 1 {
		t.Fatalf("recovered %d sessions, want 1", srv2.SessionCount())
	}
	mustVerify(t, ts2, "good", "after partial recovery")
	// The corrupt directory stays on disk for inspection.
	if _, err := os.Stat(filepath.Join(bad, wal.SnapshotFile)); err != nil {
		t.Fatalf("corrupt directory was touched: %v", err)
	}
}

// TestConcurrentReadersDuringJournaledEdits drives reads against a
// session while edits journal — the -race CI run watches this.
func TestConcurrentReadersDuringJournaledEdits(t *testing.T) {
	ts, _ := newDurableServer(t, t.TempDir(), nil)
	createSession(t, ts, "s1")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var st StatsResponse
				doJSON(t, "GET", ts.URL+"/v1/sessions/s1/stats", nil, &st)
				var page MatchPage
				doJSON(t, "GET", ts.URL+"/v1/sessions/s1/matches?limit=5", nil, &page)
			}
		}()
	}
	for round := 0; round < 5; round++ {
		applyEdits(t, ts, "s1", []EditRequest{
			{Op: "set_threshold", Rule: 1, Pred: 0, Threshold: 0.6},
			{Op: "set_threshold", Rule: 1, Pred: 0, Threshold: 0.8},
		})
	}
	close(stop)
	wg.Wait()
	mustVerify(t, ts, "s1", "after concurrent load")
	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/v1/sessions/s1/stats", nil, &st)
	if !st.Durable || st.Seq != 10 {
		t.Fatalf("durable=%v seq=%d after concurrent edits", st.Durable, st.Seq)
	}
}
