package server

import (
	"net/http"
	"testing"
)

// postRecords POSTs one record batch and returns the status code.
func postRecords(t *testing.T, url, name string, req RecordsRequest, out any) int {
	t.Helper()
	return doJSON(t, "POST", url+"/v1/sessions/"+name+"/records", req, out)
}

// TestRecordsAppendDelete streams appends and deletes into a live
// session and checks the delta-only evaluation counters: every append
// examines exactly the delta pairs the blocker produced, never the
// whole candidate set.
func TestRecordsAppendDelete(t *testing.T) {
	ts, _ := newTestServer(t)
	info := createSession(t, ts, "s1") // 18 pairs: two cat groups of 3x3

	// Append one record per side: a6 joins the c2 group (3 live B
	// partners), b6 the c1 group (3 live A partners).
	var resp RecordsResponse
	code := postRecords(t, ts.URL, "s1", RecordsRequest{
		AppendA: []RecordRow{{ID: "a6", Values: []string{"c2", "maria garcia", "chicago"}}},
		AppendB: []RecordRow{{ID: "b6", Values: []string{"c1", "jane smith", "madison"}}},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("append: status %d", code)
	}
	if resp.Appended != 2 || resp.Deleted != 0 || resp.DeleteReport != nil || resp.AppendReport == nil {
		t.Fatalf("append response: %+v", resp)
	}
	rep := resp.AppendReport
	if rep.PairsAdded != 6 {
		t.Fatalf("pairsAdded %d, want 6", rep.PairsAdded)
	}
	// The incrementality contract: only delta pairs get evaluated.
	if rep.PairsExamined != rep.PairsAdded {
		t.Fatalf("examined %d pairs for %d delta pairs", rep.PairsExamined, rep.PairsAdded)
	}
	if int(rep.Stats.PairEvals) != rep.PairsAdded {
		t.Fatalf("engine evaluated %d pairs, want %d", rep.Stats.PairEvals, rep.PairsAdded)
	}
	if resp.Pairs != info.Pairs+6 {
		t.Fatalf("live pairs %d, want %d", resp.Pairs, info.Pairs+6)
	}
	mustVerify(t, ts, "s1", "after append")

	// Delete a5: its 3 pairs (against b3,b4,b5) are tombstoned.
	resp = RecordsResponse{}
	code = postRecords(t, ts.URL, "s1", RecordsRequest{DeleteA: []string{"a5"}}, &resp)
	if code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if resp.Deleted != 1 || resp.Appended != 0 || resp.AppendReport != nil || resp.DeleteReport == nil {
		t.Fatalf("delete response: %+v", resp)
	}
	if resp.DeleteReport.PairsRemoved != 3 {
		t.Fatalf("pairsRemoved %d, want 3", resp.DeleteReport.PairsRemoved)
	}
	if resp.Pairs != info.Pairs+6-3 {
		t.Fatalf("live pairs after delete %d, want %d", resp.Pairs, info.Pairs+3)
	}
	mustVerify(t, ts, "s1", "after delete")

	// Mixed batch: the delete applies first, so b7 pairs only against
	// the surviving c2 records (a3, a4, a6 — a5 is already gone).
	resp = RecordsResponse{}
	code = postRecords(t, ts.URL, "s1", RecordsRequest{
		DeleteB: []string{"b5"},
		AppendB: []RecordRow{{ID: "b7", Values: []string{"c2", "someone new", "nowhere"}}},
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("mixed batch: status %d", code)
	}
	if resp.Deleted != 1 || resp.Appended != 1 || resp.DeleteReport == nil || resp.AppendReport == nil {
		t.Fatalf("mixed response: %+v", resp)
	}
	if resp.DeleteReport.PairsRemoved != 3 {
		t.Fatalf("mixed pairsRemoved %d, want 3 (b5 x a3,a4,a6)", resp.DeleteReport.PairsRemoved)
	}
	if resp.AppendReport.PairsAdded != 3 {
		t.Fatalf("mixed pairsAdded %d, want 3 (b7 x a3,a4,a6)", resp.AppendReport.PairsAdded)
	}
	mustVerify(t, ts, "s1", "after mixed batch")
}

// TestRecordsValidation covers the failure modes: empty batches,
// duplicate IDs, arity mismatches, unknown sessions — and that a
// failed mixed request applies nothing (all-or-nothing).
func TestRecordsValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	createSession(t, ts, "s1")
	var e ErrorResponse

	if code := postRecords(t, ts.URL, "s1", RecordsRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", code)
	}
	if code := postRecords(t, ts.URL, "nope", RecordsRequest{DeleteA: []string{"a0"}}, &e); code != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", code)
	}
	if code := postRecords(t, ts.URL, "s1", RecordsRequest{
		AppendA: []RecordRow{{ID: "a0", Values: []string{"c1", "dup", "dup"}}},
	}, &e); code != http.StatusBadRequest {
		t.Fatalf("duplicate ID: status %d", code)
	}
	if code := postRecords(t, ts.URL, "s1", RecordsRequest{
		AppendA: []RecordRow{{ID: "a9", Values: []string{"only-one-value"}}},
	}, &e); code != http.StatusBadRequest {
		t.Fatalf("arity mismatch: status %d", code)
	}
	if code := postRecords(t, ts.URL, "s1", RecordsRequest{DeleteB: []string{"b9"}}, &e); code != http.StatusBadRequest {
		t.Fatalf("unknown delete ID: status %d", code)
	}

	// All-or-nothing: an invalid append rejects the whole request, so
	// the valid delete riding along must not have been applied.
	if code := postRecords(t, ts.URL, "s1", RecordsRequest{
		DeleteA: []string{"a0"},
		AppendB: []RecordRow{{ID: "b0", Values: []string{"c1", "dup", "dup"}}},
	}, &e); code != http.StatusBadRequest {
		t.Fatalf("mixed invalid batch: status %d", code)
	}
	var resp RecordsResponse
	if code := postRecords(t, ts.URL, "s1", RecordsRequest{DeleteA: []string{"a0"}}, &resp); code != http.StatusOK {
		t.Fatalf("a0 was deleted by the rejected batch: status %d", code)
	}
	if resp.DeleteReport.PairsRemoved != 3 {
		t.Fatalf("a0 lost pairs before its delete: removed %d, want 3", resp.DeleteReport.PairsRemoved)
	}
	mustVerify(t, ts, "s1", "after validation probes")
}

// TestDurableRecordsRestartRecover is the data-side kill -9 round
// trip: record batches journal as they commit, the server dies without
// shutdown, and recovery rebuilds a byte-identical session — grown
// tables, tombstones and blocker included — that keeps accepting
// record batches.
func TestDurableRecordsRestartRecover(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newDurableServer(t, dir, nil)
	createSession(t, ts, "s1")
	// Interleave a rule edit with record batches so replay exercises
	// both kinds in order.
	applyEdits(t, ts, "s1", []EditRequest{{Op: "set_threshold", Rule: 1, Pred: 0, Threshold: 0.6}})
	var resp RecordsResponse
	if code := postRecords(t, ts.URL, "s1", RecordsRequest{
		AppendA: []RecordRow{{ID: "a6", Values: []string{"c2", "maria garcia", "chicago"}}},
		AppendB: []RecordRow{{ID: "b6", Values: []string{"c1", "jane smith", "madison"}}},
	}, &resp); code != http.StatusOK {
		t.Fatalf("append: status %d", code)
	}
	if code := postRecords(t, ts.URL, "s1", RecordsRequest{
		DeleteA: []string{"a5"}, DeleteB: []string{"b5"},
		AppendB: []RecordRow{{ID: "b7", Values: []string{"c2", "sara jones", "portland"}}},
	}, &resp); code != http.StatusOK {
		t.Fatalf("mixed batch: status %d", code)
	}
	mustVerify(t, ts, "s1", "before kill")
	var st StatsResponse
	doJSON(t, "GET", ts.URL+"/v1/sessions/s1/stats", nil, &st)
	if !st.Durable {
		t.Fatalf("session not durable: %+v", st)
	}
	// 1 edit + 1 append + (1 delete + 1 append) = 4 journal records.
	if st.Seq != 4 {
		t.Fatalf("seq %d, want 4", st.Seq)
	}
	before := getSnapshot(t, ts, "s1")
	// Kill: no Close, no journal sync beyond the per-batch fsyncs.
	ts.Close()

	ts2, srv2 := newDurableServer(t, dir, nil)
	if srv2.SessionCount() != 1 {
		t.Fatalf("recovered %d sessions, want 1", srv2.SessionCount())
	}
	mustVerify(t, ts2, "s1", "after recovery")
	after := getSnapshot(t, ts2, "s1")
	if string(before) != string(after) {
		t.Fatal("recovered session snapshot differs from the pre-kill one")
	}
	// The recovered blocker keeps accepting record batches, journaled
	// at the next sequence number.
	if code := postRecords(t, ts2.URL, "s1", RecordsRequest{
		AppendB: []RecordRow{{ID: "b8", Values: []string{"c1", "john smith", "madison"}}},
	}, &resp); code != http.StatusOK {
		t.Fatalf("append after recovery: status %d", code)
	}
	if resp.AppendReport == nil || resp.AppendReport.PairsAdded == 0 {
		t.Fatalf("post-recovery append produced no delta pairs: %+v", resp)
	}
	doJSON(t, "GET", ts2.URL+"/v1/sessions/s1/stats", nil, &st)
	if st.Seq != 5 {
		t.Fatalf("post-recovery seq %d, want 5", st.Seq)
	}
	mustVerify(t, ts2, "s1", "after post-recovery append")
}
