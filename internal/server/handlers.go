package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"rulematch/internal/block"
	"rulematch/internal/core"
	"rulematch/internal/incremental"
	"rulematch/internal/persist"
	"rulematch/internal/rule"
	"rulematch/internal/sessionstore"
	"rulematch/internal/sim"
	"rulematch/internal/table"
	"rulematch/internal/wal"
)

var errDraining = errors.New("server is draining")

// acquire resolves the {name} path wildcard to a session handle in the
// given mode, writing the error response itself on failure. The
// acquisition is the touch: an evicted session is transparently
// reloaded before this returns. Callers must Release the handle.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request, mode sessionstore.Mode) (*sessionstore.Handle, bool) {
	h, err := s.store.Acquire(r.PathValue("name"), mode)
	if err != nil {
		s.writeStoreErr(w, err)
		return nil, false
	}
	return h, true
}

// hCreate builds a session from inline tables plus either DSL rules
// and a blocker, or a persist snapshot, then runs the full
// materializing pass under the request context and admits the result
// into the store.
func (s *Server) hCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	if req.Name == "" {
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("name is required"))
		return
	}
	if req.TableA == "" || req.TableB == "" {
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("tableA and tableB are required"))
		return
	}
	a, err := table.ReadCSV(strings.NewReader(req.TableA), "A")
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("tableA: %w", err))
		return
	}
	b, err := table.ReadCSV(strings.NewReader(req.TableB), "B")
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("tableB: %w", err))
		return
	}
	cfg := s.cfg
	req.Config.Apply(&cfg)

	var sess *incremental.Session
	if len(req.Snapshot) > 0 {
		// Warm start: the snapshot carries function, pairs, memo and
		// bitmaps; only the engine knobs need applying.
		sess, err = persist.Load(bytes.NewReader(req.Snapshot), sim.Standard(), a, b)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeInvalidRequest, err)
			return
		}
		sess.Reconfigure(cfg)
	} else {
		sess, err = s.buildSession(r.Context(), a, b, cfg, &req)
		if err != nil {
			writeOpErr(w, err)
			return
		}
	}
	// Admit the session's own tables, not the parses above: a warm
	// start from a snapshot with appended records rebuilds extended
	// tables inside persist.Load. After Admit the store owns the
	// session — it may already be racing toward eviction — so the
	// response comes from the store's cached summary, not the pointer.
	if err := s.store.AdmitTenant(req.Name, req.Tenant, sess, sess.M.C.A, sess.M.C.B); err != nil {
		s.writeStoreErr(w, err)
		return
	}
	ei, ok := s.store.Info(req.Name)
	if !ok {
		// Deleted between admit and read-back; report what was admitted.
		ei = sessionstore.EntryInfo{Name: req.Name, State: sessionstore.StateResident}
	}
	writeJSON(w, http.StatusCreated, infoOf(ei))
}

// buildSession is the cold-start path: parse, block, compile, run.
func (s *Server) buildSession(ctx context.Context, a, b *table.Table, cfg core.Config, req *CreateSessionRequest) (*incremental.Session, error) {
	if req.Rules == "" {
		return nil, errors.New("rules (or a snapshot) are required")
	}
	if (req.Block == "") == (req.BlockTokens == "") {
		return nil, errors.New("exactly one of block or blockTokens is required")
	}
	f, err := rule.ParseFunction(req.Rules)
	if err != nil {
		return nil, fmt.Errorf("parse rules: %w", err)
	}
	var blocker block.DeltaBlocker
	if req.Block != "" {
		blocker = block.AttrEquivalence{Attr: req.Block}
	} else {
		blocker = block.TokenOverlap{Attr: req.BlockTokens, MinShared: 1, MaxTokenFreq: b.Len() / 10}
	}
	pairs, err := blocker.Pairs(a, b)
	if err != nil {
		return nil, err
	}
	c, err := core.Compile(f, sim.Standard(), a, b)
	if err != nil {
		return nil, err
	}
	sess := incremental.NewSessionConfig(c, pairs, cfg)
	// Keep the blocker on the session so the records endpoint can block
	// appended records incrementally.
	sess.Blocker = blocker
	if err := sess.Run(ctx); err != nil {
		return nil, err
	}
	return sess, nil
}

func infoOf(ei sessionstore.EntryInfo) SessionInfo {
	info := SessionInfo{
		Name:          ei.Name,
		Pairs:         ei.Meta.Pairs,
		Rules:         ei.Meta.Rules,
		Matches:       ei.Meta.Matches,
		LastOp:        ei.Meta.LastOp,
		State:         ei.State,
		ResidentBytes: ei.ResidentBytes,
		Evictions:     ei.Evictions,
		Reloads:       ei.Reloads,
	}
	if !ei.Created.IsZero() {
		info.Created = ei.Created.UTC().Format(timeLayout)
	}
	if !ei.LastTouch.IsZero() {
		info.LastTouch = ei.LastTouch.UTC().Format(timeLayout)
	}
	return info
}

// hList describes every session, resident or evicted. Listing never
// reloads an evicted session — summaries come from the store's cached
// metadata, so monitoring a budget-constrained server is free.
func (s *Server) hList(w http.ResponseWriter, r *http.Request) {
	infos := s.store.List()
	out := SessionList{Sessions: make([]SessionInfo, 0, len(infos))}
	for _, ei := range infos {
		out.Sessions = append(out.Sessions, infoOf(ei))
	}
	writeJSON(w, http.StatusOK, out)
}

// hGet is a touch: acquiring the handle transparently reloads an
// evicted session, so the returned state is always resident.
func (s *Server) hGet(w http.ResponseWriter, r *http.Request) {
	if !s.waitConsistent(w, r) {
		return
	}
	h, ok := s.acquire(w, r, sessionstore.ModeRead)
	if !ok {
		return
	}
	defer h.Release()
	ei, _ := s.store.Info(h.Name())
	writeJSON(w, http.StatusOK, infoOf(ei))
}

func (s *Server) hDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.store.Remove(name) {
		writeErr(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("no session %q", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) hRules(w http.ResponseWriter, r *http.Request) {
	if !s.waitConsistent(w, r) {
		return
	}
	h, ok := s.acquire(w, r, sessionstore.ModeRead)
	if !ok {
		return
	}
	defer h.Release()
	sess := h.Session()
	out := RuleList{Rules: make([]RuleInfo, len(sess.M.C.Rules))}
	for ri := range sess.M.C.Rules {
		cr := &sess.M.C.Rules[ri]
		info := RuleInfo{Index: ri, Name: cr.Name, Preds: make([]PredInfo, len(cr.Preds))}
		if sess.St != nil {
			info.TrueCount = sess.St.RuleTrue[ri].Count()
		}
		for pj := range cr.Preds {
			p := &cr.Preds[pj]
			feat := sess.M.C.Features[p.Feat].Feature
			pi := PredInfo{
				Index: pj, Key: p.Key,
				Sim: feat.Sim, AttrA: feat.AttrA, AttrB: feat.AttrB,
				Op: p.Op.String(), Threshold: p.Threshold,
			}
			if sess.St != nil {
				pi.FalseCount = sess.St.PredFalse[ri][pj].Count()
			}
			info.Preds[pj] = pi
		}
		out.Rules[ri] = info
	}
	writeJSON(w, http.StatusOK, out)
}

// resolveRule turns an index-or-name rule reference into an index.
func resolveRule(sess *incremental.Session, idx int, name string) (int, error) {
	if name == "" {
		return idx, nil
	}
	for ri := range sess.M.C.Rules {
		if sess.M.C.Rules[ri].Name == name {
			return ri, nil
		}
	}
	return 0, fmt.Errorf("no rule named %q", name)
}

// fenceCheck enforces epoch fencing on a journaled write, before the
// edit touches session state. Two refusals, both 409 stale_epoch:
//
//   - the request's Em-Epoch (the highest epoch the client has seen)
//     exceeds ours — the client proved a newer primary exists, so this
//     node was deposed and fences itself permanently;
//   - the session is already fenced from an earlier proof.
//
// A request Em-Epoch at or below ours is fine: the client is merely
// no newer than us. Returns false after writing the error response.
func (s *Server) fenceCheck(w http.ResponseWriter, r *http.Request, h *sessionstore.Handle) bool {
	if !h.Durable() {
		return true
	}
	if v := r.Header.Get(HeaderEpoch); v != "" {
		ep, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("bad Em-Epoch: want a decimal epoch"))
			return false
		}
		if ep > h.Epoch() {
			h.Fence()
			writeErr(w, http.StatusConflict, CodeStaleEpoch,
				fmt.Errorf("client has seen epoch %d; this node is at %d and is now fenced", ep, h.Epoch()))
			return false
		}
	}
	if h.Fenced() {
		writeErr(w, http.StatusConflict, CodeStaleEpoch,
			errors.New("node is fenced: a newer replication epoch exists; send writes to the current primary"))
		return false
	}
	return true
}

// setWriteHeaders stamps a successful journaled write's response with
// the sequence the journal assigned (Em-Seq — the client threads it
// into ?consistent= reads and into post-failover replay) and the epoch
// it was written under (Em-Epoch).
func setWriteHeaders(w http.ResponseWriter, h *sessionstore.Handle) {
	if !h.Durable() {
		return
	}
	w.Header().Set(HeaderSeq, strconv.FormatUint(h.Seq(), 10))
	w.Header().Set(HeaderEpoch, strconv.FormatUint(h.Epoch(), 10))
}

// hEdit applies one incremental operation (Algorithms 7–10) under the
// session's write lock. Edit-mode acquisition charges the per-session
// edit quota.
func (s *Server) hEdit(w http.ResponseWriter, r *http.Request) {
	var req EditRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	h, ok := s.acquire(w, r, sessionstore.ModeEdit)
	if !ok {
		return
	}
	defer h.Release()
	if !s.fenceCheck(w, r, h) {
		return
	}
	sess := h.Session()
	ri, err := resolveRule(sess, req.Rule, req.RuleName)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	switch req.Op {
	case "add_predicate":
		var p rule.Predicate
		if p, err = rule.ParsePredicate(req.Predicate); err == nil {
			err = sess.AddPredicate(ri, p)
		}
	case "remove_predicate":
		err = sess.RemovePredicate(ri, req.Pred)
	case "tighten":
		err = sess.TightenPredicate(ri, req.Pred, req.Threshold)
	case "relax":
		err = sess.RelaxPredicate(ri, req.Pred, req.Threshold)
	case "set_threshold":
		err = sess.SetThreshold(ri, req.Pred, req.Threshold)
	case "add_rule":
		var nr rule.Rule
		if nr, err = rule.ParseRule(req.RuleSrc); err == nil {
			err = sess.AddRule(nr)
		}
	case "remove_rule":
		err = sess.RemoveRule(ri)
	default:
		err = fmt.Errorf("unknown op %q (want add_predicate, remove_predicate, tighten, relax, set_threshold, add_rule or remove_rule)", req.Op)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	// Journal the committed edit before acknowledging it. The record
	// stores the resolved rule index and the same op names wal.Apply
	// replays, so recovery repeats exactly this operation.
	src := req.Predicate
	if req.Op == "add_rule" {
		src = req.RuleSrc
	}
	h.RecordEdit(wal.Record{
		Op: req.Op, Rule: ri, Pred: req.Pred,
		Threshold: req.Threshold, Src: src,
	})
	setWriteHeaders(w, h)
	writeJSON(w, http.StatusOK, EditResponse{
		Report:  reportOf(sess.LastOp),
		Matches: sess.MatchCount(),
		Rules:   len(sess.M.C.Rules),
	})
}

// hRecords applies a batch of record deletes and appends under the
// session's write lock. Deletes go first so retired records never pair
// against the new ones; each kind journals as its own record
// (record_delete, then record_append), in the same order recovery
// replays them. The whole request is validated before anything is
// applied — including that both journal records fit the WAL's record
// size limit, so an oversized batch fails the request instead of
// degrading the session to ephemeral at journaling time.
func (s *Server) hRecords(w http.ResponseWriter, r *http.Request) {
	var req RecordsRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	if len(req.AppendA)+len(req.AppendB)+len(req.DeleteA)+len(req.DeleteB) == 0 {
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("empty batch: nothing to append or delete"))
		return
	}
	aRecs := rowsToRecords(req.AppendA)
	bRecs := rowsToRecords(req.AppendB)
	h, ok := s.acquire(w, r, sessionstore.ModeEdit)
	if !ok {
		return
	}
	defer h.Release()
	if !s.fenceCheck(w, r, h) {
		return
	}
	sess := h.Session()
	if err := sess.ValidateAppend(aRecs, bRecs); err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	if h.Durable() {
		if err := checkJournalable(&req, aRecs, bRecs); err != nil {
			writeErr(w, http.StatusBadRequest, CodeInvalidRequest, err)
			return
		}
	}
	var resp RecordsResponse
	if len(req.DeleteA)+len(req.DeleteB) > 0 {
		if err := sess.DeleteRecords(req.DeleteA, req.DeleteB); err != nil {
			writeErr(w, http.StatusBadRequest, CodeInvalidRequest, err)
			return
		}
		resp.Deleted = len(req.DeleteA) + len(req.DeleteB)
		rep := reportOf(sess.LastOp)
		resp.DeleteReport = &rep
		h.RecordEdit(wal.Record{Op: "record_delete", DelA: req.DeleteA, DelB: req.DeleteB})
	}
	if len(aRecs)+len(bRecs) > 0 {
		if err := sess.AddRecords(aRecs, bRecs); err != nil {
			writeOpErr(w, err)
			return
		}
		resp.Appended = len(aRecs) + len(bRecs)
		rep := reportOf(sess.LastOp)
		resp.AppendReport = &rep
		h.RecordEdit(wal.Record{Op: "record_append", RecsA: aRecs, RecsB: bRecs})
	}
	resp.Matches = sess.MatchCount()
	resp.Pairs = sess.LivePairCount()
	setWriteHeaders(w, h)
	writeJSON(w, http.StatusOK, resp)
}

// rowsToRecords converts wire rows to table records.
func rowsToRecords(rows []RecordRow) []table.Record {
	if len(rows) == 0 {
		return nil
	}
	out := make([]table.Record, len(rows))
	for i, r := range rows {
		out[i] = table.Record{ID: r.ID, Values: r.Values}
	}
	return out
}

// checkJournalable verifies both journal records a request would emit
// fit the WAL's per-record size limit (with slack for the sequence
// number assigned at append time).
func checkJournalable(req *RecordsRequest, aRecs, bRecs []table.Record) error {
	const seqSlack = 32
	for _, rec := range []wal.Record{
		{Op: "record_delete", DelA: req.DeleteA, DelB: req.DeleteB},
		{Op: "record_append", RecsA: aRecs, RecsB: bRecs},
	} {
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("encode journal record: %w", err)
		}
		if len(payload)+seqSlack > wal.MaxRecordBytes {
			return fmt.Errorf("batch too large to journal: %d bytes (limit %d); split it into smaller batches",
				len(payload), wal.MaxRecordBytes)
		}
	}
	return nil
}

func reportOf(op incremental.OpReport) OpReport {
	return OpReport{
		Op:             op.Op,
		PairsExamined:  op.PairsExamined,
		OwnershipMoves: op.OwnershipMoves,
		PairsAdded:     op.PairsAdded,
		PairsRemoved:   op.PairsRemoved,
		Stats:          op.Stats,
	}
}

// hRun re-materializes from scratch (with the warm memo) under the
// request context; a cancelled run leaves the previous state standing.
func (s *Server) hRun(w http.ResponseWriter, r *http.Request) {
	h, ok := s.acquire(w, r, sessionstore.ModeWrite)
	if !ok {
		return
	}
	defer h.Release()
	if err := h.Session().Run(r.Context()); err != nil {
		writeOpErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RunResponse{
		Report:  reportOf(h.Session().LastOp),
		Matches: h.Session().MatchCount(),
	})
}

// hSweep evaluates candidate thresholds for one predicate. The sweep
// reads session state and warms the memo (hence the write lock) but
// never moves a live threshold; cancellation mid-sweep leaves the
// session untouched.
func (s *Server) hSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	h, ok := s.acquire(w, r, sessionstore.ModeWrite)
	if !ok {
		return
	}
	defer h.Release()
	sess := h.Session()
	ri, err := resolveRule(sess, req.Rule, req.RuleName)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	thresholds := req.Thresholds
	if len(thresholds) == 0 {
		steps := req.Steps
		if steps == 0 {
			steps = 9
		}
		thresholds = incremental.DefaultSweep(steps)
	}
	points, err := sess.SweepThresholdParallelCtx(r.Context(), ri, req.Pred, thresholds, sess.M.Workers)
	if err != nil {
		writeOpErr(w, err)
		return
	}
	out := SweepResponse{Points: make([]SweepPoint, len(points))}
	for i, p := range points {
		out.Points[i] = SweepPoint{Threshold: p.Threshold, Matches: p.Matched.Count()}
	}
	writeJSON(w, http.StatusOK, out)
}

// matchCursor is the decoded form of the opaque page token: a format
// version and the candidate pair index the next page starts at. The
// pair index is stable across eviction/reload (reload rebuilds the
// identical pair order) and across replica failover (a caught-up
// replica's state is byte-identical), so a client can resume a page
// walk against a different node.
type matchCursor struct {
	V int `json:"v"`
	P int `json:"p"`
}

// encodeCursor packs a pair index into the opaque wire token.
func encodeCursor(p int) string {
	b, _ := json.Marshal(matchCursor{V: 1, P: p})
	return base64.RawURLEncoding.EncodeToString(b)
}

// decodeCursor unpacks a wire token from encodeCursor.
func decodeCursor(s string) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return 0, fmt.Errorf("bad cursor %q", s)
	}
	var c matchCursor
	if err := json.Unmarshal(raw, &c); err != nil || c.V != 1 || c.P < 0 {
		return 0, fmt.Errorf("bad cursor %q", s)
	}
	return c.P, nil
}

// hMatches pages through the matched pairs. Pagination is by opaque
// cursor: pass a response's nextCursor back as ?cursor= until it comes
// back empty. The legacy numeric ?offset= (a bare pair index) is still
// accepted for one release and answered with a Deprecation header.
func (s *Server) hMatches(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	start, limit := 0, 100
	var err error
	cursorParam, offsetParam := q.Get("cursor"), q.Get("offset")
	switch {
	case cursorParam != "" && offsetParam != "":
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("cursor and offset are mutually exclusive"))
		return
	case cursorParam != "":
		if start, err = decodeCursor(cursorParam); err != nil {
			writeErr(w, http.StatusBadRequest, CodeInvalidRequest, err)
			return
		}
	case offsetParam != "":
		if start, err = strconv.Atoi(offsetParam); err != nil || start < 0 {
			writeErr(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("bad offset %q", offsetParam))
			return
		}
		// Per the IETF Deprecation header draft: the parameter is
		// deprecated now; switch to the opaque cursor.
		w.Header().Set("Deprecation", "true")
	}
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 1 {
			writeErr(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("bad limit %q", v))
			return
		}
	}
	if !s.waitConsistent(w, r) {
		return
	}
	h, ok := s.acquire(w, r, sessionstore.ModeRead)
	if !ok {
		return
	}
	defer h.Release()
	sess := h.Session()
	a, b := h.Tables()
	page := MatchPage{Matches: []MatchedPair{}, Total: sess.MatchCount()}
	for pi := start; pi < len(sess.M.Pairs); pi++ {
		if !sess.St.Matched.Get(pi) {
			continue
		}
		if len(page.Matches) == limit {
			page.NextCursor = encodeCursor(pi)
			break
		}
		p := sess.M.Pairs[pi]
		page.Matches = append(page.Matches, MatchedPair{
			Pair: pi,
			IDA:  a.Records[p.A].ID,
			IDB:  b.Records[p.B].ID,
			Rule: owningRule(sess, pi),
		})
	}
	writeJSON(w, http.StatusOK, page)
}

// owningRule names the rule whose RuleTrue bit covers the pair.
func owningRule(sess *incremental.Session, pi int) string {
	for ri := range sess.M.C.Rules {
		if sess.St.RuleTrue[ri].Get(pi) {
			return sess.M.C.Rules[ri].Name
		}
	}
	return ""
}

func (s *Server) hStats(w http.ResponseWriter, r *http.Request) {
	if !s.waitConsistent(w, r) {
		return
	}
	h, ok := s.acquire(w, r, sessionstore.ModeRead)
	if !ok {
		return
	}
	defer h.Release()
	sess := h.Session()
	memo, bitmaps := sess.MemoryBytes()
	st := sess.M.Stats
	rate := 0.0
	if st.MemoHits+st.FeatureComputes > 0 {
		rate = float64(st.MemoHits) / float64(st.MemoHits+st.FeatureComputes)
	}
	var entries int64
	if sess.M.Memo != nil {
		entries = sess.M.Memo.Entries()
	}
	lc := h.Lifecycle()
	resp := StatsResponse{
		Pairs:          len(sess.M.Pairs),
		Rules:          len(sess.M.C.Rules),
		Matches:        sess.MatchCount(),
		MemoBytes:      memo,
		BitmapBytes:    bitmaps,
		MemoEntries:    entries,
		Stats:          st,
		MemoHitRate:    rate,
		LastOp:         reportOf(sess.LastOp),
		PersistErr:     h.PersistErr(),
		State:          lc.State,
		ResidentBytes:  lc.ResidentBytes,
		Evictions:      lc.Evictions,
		Reloads:        lc.Reloads,
		Edits:          lc.Edits,
		MaxEdits:       lc.MaxEdits,
		Tenant:         lc.Tenant,
		TenantEdits:    lc.TenantEdits,
		MaxTenantEdits: lc.MaxTenantEdits,
	}
	if !lc.LastTouch.IsZero() {
		resp.LastTouch = lc.LastTouch.UTC().Format(timeLayout)
	}
	if h.Durable() {
		resp.Durable = true
		resp.Seq = h.Seq()
		resp.JournalBytes = h.JournalBytes()
	}
	if s.Replica() {
		rs := &ReplicationStats{Role: "replica", PrimaryURL: s.PrimaryURL()}
		if s.replicaSrc != nil {
			if applied, ok := s.replicaSrc.AppliedSeq(h.Name()); ok {
				rs.AppliedSeq = applied
			}
			if pseq, ok := s.replicaSrc.PrimarySeq(h.Name()); ok {
				rs.PrimarySeq = pseq
			}
			if rs.PrimarySeq > rs.AppliedSeq {
				rs.Lag = rs.PrimarySeq - rs.AppliedSeq
			}
		}
		resp.Replication = rs
	} else if h.Durable() {
		resp.Replication = &ReplicationStats{Role: "primary", PrimarySeq: h.Seq(), Epoch: h.Epoch()}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) hVerify(w http.ResponseWriter, r *http.Request) {
	h, ok := s.acquire(w, r, sessionstore.ModeRead)
	if !ok {
		return
	}
	defer h.Release()
	if err := h.Session().Verify(); err != nil {
		writeJSON(w, http.StatusOK, VerifyResponse{OK: false, Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, VerifyResponse{OK: true})
}

// hSnapshot streams the session in persist format — the same bytes
// emdebug's save command writes, so a session can move between the
// service and the CLIs. The snapshot is stamped with the journal
// sequence it covers: the local seq on a primary, the applied seq on a
// replica — so a caught-up replica's snapshot is byte-identical to the
// primary's at the same sequence.
func (s *Server) hSnapshot(w http.ResponseWriter, r *http.Request) {
	if !s.waitConsistent(w, r) {
		return
	}
	h, ok := s.acquire(w, r, sessionstore.ModeRead)
	if !ok {
		return
	}
	defer h.Release()
	seq := h.Seq()
	if s.Replica() && s.replicaSrc != nil {
		if applied, rok := s.replicaSrc.AppliedSeq(h.Name()); rok {
			seq = applied
		}
	}
	var buf bytes.Buffer
	if err := persist.Save(&buf, h.Session(), persist.WithSeq(seq)); err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = buf.WriteTo(w)
}
