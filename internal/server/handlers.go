package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"rulematch/internal/block"
	"rulematch/internal/core"
	"rulematch/internal/incremental"
	"rulematch/internal/persist"
	"rulematch/internal/rule"
	"rulematch/internal/sessionstore"
	"rulematch/internal/sim"
	"rulematch/internal/table"
	"rulematch/internal/wal"
)

var errDraining = errors.New("server is draining")

// errCode maps an operation error to a status: cancelled contexts
// become 499 in spirit (client closed request; reported as 503 since
// Go's net/http has no 499), validation errors 400.
func errCode(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// storeErrCode maps a sessionstore acquisition/admission error to a
// status. Quota rejections are 429 (the client can retry after
// deleting sessions or waiting); anything else unrecognized is a
// reload failure, which is the server's problem, not the client's.
func storeErrCode(err error) int {
	switch {
	case errors.Is(err, sessionstore.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, sessionstore.ErrExists):
		return http.StatusConflict
	case errors.Is(err, sessionstore.ErrBadName):
		return http.StatusBadRequest
	case sessionstore.IsQuota(err):
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// acquire resolves the {name} path wildcard to a session handle in the
// given mode, writing the error response itself on failure. The
// acquisition is the touch: an evicted session is transparently
// reloaded before this returns. Callers must Release the handle.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request, mode sessionstore.Mode) (*sessionstore.Handle, bool) {
	h, err := s.store.Acquire(r.PathValue("name"), mode)
	if err != nil {
		writeErr(w, storeErrCode(err), err)
		return nil, false
	}
	return h, true
}

// hCreate builds a session from inline tables plus either DSL rules
// and a blocker, or a persist snapshot, then runs the full
// materializing pass under the request context and admits the result
// into the store.
func (s *Server) hCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("name is required"))
		return
	}
	if req.TableA == "" || req.TableB == "" {
		writeErr(w, http.StatusBadRequest, errors.New("tableA and tableB are required"))
		return
	}
	a, err := table.ReadCSV(strings.NewReader(req.TableA), "A")
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("tableA: %w", err))
		return
	}
	b, err := table.ReadCSV(strings.NewReader(req.TableB), "B")
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("tableB: %w", err))
		return
	}
	cfg := s.cfg
	req.Config.Apply(&cfg)

	var sess *incremental.Session
	if len(req.Snapshot) > 0 {
		// Warm start: the snapshot carries function, pairs, memo and
		// bitmaps; only the engine knobs need applying.
		sess, err = persist.Load(bytes.NewReader(req.Snapshot), sim.Standard(), a, b)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		sess.Reconfigure(cfg)
	} else {
		sess, err = s.buildSession(r.Context(), a, b, cfg, &req)
		if err != nil {
			writeErr(w, errCode(err), err)
			return
		}
	}
	// Admit the session's own tables, not the parses above: a warm
	// start from a snapshot with appended records rebuilds extended
	// tables inside persist.Load. After Admit the store owns the
	// session — it may already be racing toward eviction — so the
	// response comes from the store's cached summary, not the pointer.
	if err := s.store.Admit(req.Name, sess, sess.M.C.A, sess.M.C.B); err != nil {
		writeErr(w, storeErrCode(err), err)
		return
	}
	ei, ok := s.store.Info(req.Name)
	if !ok {
		// Deleted between admit and read-back; report what was admitted.
		ei = sessionstore.EntryInfo{Name: req.Name, State: sessionstore.StateResident}
	}
	writeJSON(w, http.StatusCreated, infoOf(ei))
}

// buildSession is the cold-start path: parse, block, compile, run.
func (s *Server) buildSession(ctx context.Context, a, b *table.Table, cfg core.Config, req *CreateSessionRequest) (*incremental.Session, error) {
	if req.Rules == "" {
		return nil, errors.New("rules (or a snapshot) are required")
	}
	if (req.Block == "") == (req.BlockTokens == "") {
		return nil, errors.New("exactly one of block or blockTokens is required")
	}
	f, err := rule.ParseFunction(req.Rules)
	if err != nil {
		return nil, fmt.Errorf("parse rules: %w", err)
	}
	var blocker block.DeltaBlocker
	if req.Block != "" {
		blocker = block.AttrEquivalence{Attr: req.Block}
	} else {
		blocker = block.TokenOverlap{Attr: req.BlockTokens, MinShared: 1, MaxTokenFreq: b.Len() / 10}
	}
	pairs, err := blocker.Pairs(a, b)
	if err != nil {
		return nil, err
	}
	c, err := core.Compile(f, sim.Standard(), a, b)
	if err != nil {
		return nil, err
	}
	sess := incremental.NewSessionConfig(c, pairs, cfg)
	// Keep the blocker on the session so the records endpoint can block
	// appended records incrementally.
	sess.Blocker = blocker
	if err := sess.Run(ctx); err != nil {
		return nil, err
	}
	return sess, nil
}

func infoOf(ei sessionstore.EntryInfo) SessionInfo {
	info := SessionInfo{
		Name:          ei.Name,
		Pairs:         ei.Meta.Pairs,
		Rules:         ei.Meta.Rules,
		Matches:       ei.Meta.Matches,
		LastOp:        ei.Meta.LastOp,
		State:         ei.State,
		ResidentBytes: ei.ResidentBytes,
		Evictions:     ei.Evictions,
		Reloads:       ei.Reloads,
	}
	if !ei.Created.IsZero() {
		info.Created = ei.Created.UTC().Format(timeLayout)
	}
	if !ei.LastTouch.IsZero() {
		info.LastTouch = ei.LastTouch.UTC().Format(timeLayout)
	}
	return info
}

// hList describes every session, resident or evicted. Listing never
// reloads an evicted session — summaries come from the store's cached
// metadata, so monitoring a budget-constrained server is free.
func (s *Server) hList(w http.ResponseWriter, r *http.Request) {
	infos := s.store.List()
	out := SessionList{Sessions: make([]SessionInfo, 0, len(infos))}
	for _, ei := range infos {
		out.Sessions = append(out.Sessions, infoOf(ei))
	}
	writeJSON(w, http.StatusOK, out)
}

// hGet is a touch: acquiring the handle transparently reloads an
// evicted session, so the returned state is always resident.
func (s *Server) hGet(w http.ResponseWriter, r *http.Request) {
	h, ok := s.acquire(w, r, sessionstore.ModeRead)
	if !ok {
		return
	}
	defer h.Release()
	ei, _ := s.store.Info(h.Name())
	writeJSON(w, http.StatusOK, infoOf(ei))
}

func (s *Server) hDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.store.Remove(name) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no session %q", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) hRules(w http.ResponseWriter, r *http.Request) {
	h, ok := s.acquire(w, r, sessionstore.ModeRead)
	if !ok {
		return
	}
	defer h.Release()
	sess := h.Session()
	out := RuleList{Rules: make([]RuleInfo, len(sess.M.C.Rules))}
	for ri := range sess.M.C.Rules {
		cr := &sess.M.C.Rules[ri]
		info := RuleInfo{Index: ri, Name: cr.Name, Preds: make([]PredInfo, len(cr.Preds))}
		if sess.St != nil {
			info.TrueCount = sess.St.RuleTrue[ri].Count()
		}
		for pj := range cr.Preds {
			p := &cr.Preds[pj]
			feat := sess.M.C.Features[p.Feat].Feature
			pi := PredInfo{
				Index: pj, Key: p.Key,
				Sim: feat.Sim, AttrA: feat.AttrA, AttrB: feat.AttrB,
				Op: p.Op.String(), Threshold: p.Threshold,
			}
			if sess.St != nil {
				pi.FalseCount = sess.St.PredFalse[ri][pj].Count()
			}
			info.Preds[pj] = pi
		}
		out.Rules[ri] = info
	}
	writeJSON(w, http.StatusOK, out)
}

// resolveRule turns an index-or-name rule reference into an index.
func resolveRule(sess *incremental.Session, idx int, name string) (int, error) {
	if name == "" {
		return idx, nil
	}
	for ri := range sess.M.C.Rules {
		if sess.M.C.Rules[ri].Name == name {
			return ri, nil
		}
	}
	return 0, fmt.Errorf("no rule named %q", name)
}

// hEdit applies one incremental operation (Algorithms 7–10) under the
// session's write lock. Edit-mode acquisition charges the per-session
// edit quota.
func (s *Server) hEdit(w http.ResponseWriter, r *http.Request) {
	var req EditRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	h, ok := s.acquire(w, r, sessionstore.ModeEdit)
	if !ok {
		return
	}
	defer h.Release()
	sess := h.Session()
	ri, err := resolveRule(sess, req.Rule, req.RuleName)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	switch req.Op {
	case "add_predicate":
		var p rule.Predicate
		if p, err = rule.ParsePredicate(req.Predicate); err == nil {
			err = sess.AddPredicate(ri, p)
		}
	case "remove_predicate":
		err = sess.RemovePredicate(ri, req.Pred)
	case "tighten":
		err = sess.TightenPredicate(ri, req.Pred, req.Threshold)
	case "relax":
		err = sess.RelaxPredicate(ri, req.Pred, req.Threshold)
	case "set_threshold":
		err = sess.SetThreshold(ri, req.Pred, req.Threshold)
	case "add_rule":
		var nr rule.Rule
		if nr, err = rule.ParseRule(req.RuleSrc); err == nil {
			err = sess.AddRule(nr)
		}
	case "remove_rule":
		err = sess.RemoveRule(ri)
	default:
		err = fmt.Errorf("unknown op %q (want add_predicate, remove_predicate, tighten, relax, set_threshold, add_rule or remove_rule)", req.Op)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Journal the committed edit before acknowledging it. The record
	// stores the resolved rule index and the same op names wal.Apply
	// replays, so recovery repeats exactly this operation.
	src := req.Predicate
	if req.Op == "add_rule" {
		src = req.RuleSrc
	}
	h.RecordEdit(wal.Record{
		Op: req.Op, Rule: ri, Pred: req.Pred,
		Threshold: req.Threshold, Src: src,
	})
	writeJSON(w, http.StatusOK, EditResponse{
		Report:  reportOf(sess.LastOp),
		Matches: sess.MatchCount(),
		Rules:   len(sess.M.C.Rules),
	})
}

// hRecords applies a batch of record deletes and appends under the
// session's write lock. Deletes go first so retired records never pair
// against the new ones; each kind journals as its own record
// (record_delete, then record_append), in the same order recovery
// replays them. The whole request is validated before anything is
// applied — including that both journal records fit the WAL's record
// size limit, so an oversized batch fails the request instead of
// degrading the session to ephemeral at journaling time.
func (s *Server) hRecords(w http.ResponseWriter, r *http.Request) {
	var req RecordsRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.AppendA)+len(req.AppendB)+len(req.DeleteA)+len(req.DeleteB) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("empty batch: nothing to append or delete"))
		return
	}
	aRecs := rowsToRecords(req.AppendA)
	bRecs := rowsToRecords(req.AppendB)
	h, ok := s.acquire(w, r, sessionstore.ModeEdit)
	if !ok {
		return
	}
	defer h.Release()
	sess := h.Session()
	if err := sess.ValidateAppend(aRecs, bRecs); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if h.Durable() {
		if err := checkJournalable(&req, aRecs, bRecs); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	var resp RecordsResponse
	if len(req.DeleteA)+len(req.DeleteB) > 0 {
		if err := sess.DeleteRecords(req.DeleteA, req.DeleteB); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		resp.Deleted = len(req.DeleteA) + len(req.DeleteB)
		rep := reportOf(sess.LastOp)
		resp.DeleteReport = &rep
		h.RecordEdit(wal.Record{Op: "record_delete", DelA: req.DeleteA, DelB: req.DeleteB})
	}
	if len(aRecs)+len(bRecs) > 0 {
		if err := sess.AddRecords(aRecs, bRecs); err != nil {
			writeErr(w, errCode(err), err)
			return
		}
		resp.Appended = len(aRecs) + len(bRecs)
		rep := reportOf(sess.LastOp)
		resp.AppendReport = &rep
		h.RecordEdit(wal.Record{Op: "record_append", RecsA: aRecs, RecsB: bRecs})
	}
	resp.Matches = sess.MatchCount()
	resp.Pairs = sess.LivePairCount()
	writeJSON(w, http.StatusOK, resp)
}

// rowsToRecords converts wire rows to table records.
func rowsToRecords(rows []RecordRow) []table.Record {
	if len(rows) == 0 {
		return nil
	}
	out := make([]table.Record, len(rows))
	for i, r := range rows {
		out[i] = table.Record{ID: r.ID, Values: r.Values}
	}
	return out
}

// checkJournalable verifies both journal records a request would emit
// fit the WAL's per-record size limit (with slack for the sequence
// number assigned at append time).
func checkJournalable(req *RecordsRequest, aRecs, bRecs []table.Record) error {
	const seqSlack = 32
	for _, rec := range []wal.Record{
		{Op: "record_delete", DelA: req.DeleteA, DelB: req.DeleteB},
		{Op: "record_append", RecsA: aRecs, RecsB: bRecs},
	} {
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("encode journal record: %w", err)
		}
		if len(payload)+seqSlack > wal.MaxRecordBytes {
			return fmt.Errorf("batch too large to journal: %d bytes (limit %d); split it into smaller batches",
				len(payload), wal.MaxRecordBytes)
		}
	}
	return nil
}

func reportOf(op incremental.OpReport) OpReport {
	return OpReport{
		Op:             op.Op,
		PairsExamined:  op.PairsExamined,
		OwnershipMoves: op.OwnershipMoves,
		PairsAdded:     op.PairsAdded,
		PairsRemoved:   op.PairsRemoved,
		Stats:          op.Stats,
	}
}

// hRun re-materializes from scratch (with the warm memo) under the
// request context; a cancelled run leaves the previous state standing.
func (s *Server) hRun(w http.ResponseWriter, r *http.Request) {
	h, ok := s.acquire(w, r, sessionstore.ModeWrite)
	if !ok {
		return
	}
	defer h.Release()
	if err := h.Session().Run(r.Context()); err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, RunResponse{
		Report:  reportOf(h.Session().LastOp),
		Matches: h.Session().MatchCount(),
	})
}

// hSweep evaluates candidate thresholds for one predicate. The sweep
// reads session state and warms the memo (hence the write lock) but
// never moves a live threshold; cancellation mid-sweep leaves the
// session untouched.
func (s *Server) hSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	h, ok := s.acquire(w, r, sessionstore.ModeWrite)
	if !ok {
		return
	}
	defer h.Release()
	sess := h.Session()
	ri, err := resolveRule(sess, req.Rule, req.RuleName)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	thresholds := req.Thresholds
	if len(thresholds) == 0 {
		steps := req.Steps
		if steps == 0 {
			steps = 9
		}
		thresholds = incremental.DefaultSweep(steps)
	}
	points, err := sess.SweepThresholdParallelCtx(r.Context(), ri, req.Pred, thresholds, sess.M.Workers)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	out := SweepResponse{Points: make([]SweepPoint, len(points))}
	for i, p := range points {
		out.Points[i] = SweepPoint{Threshold: p.Threshold, Matches: p.Matched.Count()}
	}
	writeJSON(w, http.StatusOK, out)
}

// hMatches pages through the matched pairs. The cursor is a candidate
// pair index (start at 0); NextCursor is -1 on the last page.
func (s *Server) hMatches(w http.ResponseWriter, r *http.Request) {
	cursor, limit := 0, 100
	var err error
	if v := r.URL.Query().Get("cursor"); v != "" {
		if cursor, err = strconv.Atoi(v); err != nil || cursor < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad cursor %q", v))
			return
		}
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
	}
	h, ok := s.acquire(w, r, sessionstore.ModeRead)
	if !ok {
		return
	}
	defer h.Release()
	sess := h.Session()
	a, b := h.Tables()
	page := MatchPage{Matches: []MatchedPair{}, NextCursor: -1, Total: sess.MatchCount()}
	for pi := cursor; pi < len(sess.M.Pairs); pi++ {
		if !sess.St.Matched.Get(pi) {
			continue
		}
		if len(page.Matches) == limit {
			page.NextCursor = pi
			break
		}
		p := sess.M.Pairs[pi]
		page.Matches = append(page.Matches, MatchedPair{
			Pair: pi,
			IDA:  a.Records[p.A].ID,
			IDB:  b.Records[p.B].ID,
			Rule: owningRule(sess, pi),
		})
	}
	writeJSON(w, http.StatusOK, page)
}

// owningRule names the rule whose RuleTrue bit covers the pair.
func owningRule(sess *incremental.Session, pi int) string {
	for ri := range sess.M.C.Rules {
		if sess.St.RuleTrue[ri].Get(pi) {
			return sess.M.C.Rules[ri].Name
		}
	}
	return ""
}

func (s *Server) hStats(w http.ResponseWriter, r *http.Request) {
	h, ok := s.acquire(w, r, sessionstore.ModeRead)
	if !ok {
		return
	}
	defer h.Release()
	sess := h.Session()
	memo, bitmaps := sess.MemoryBytes()
	st := sess.M.Stats
	rate := 0.0
	if st.MemoHits+st.FeatureComputes > 0 {
		rate = float64(st.MemoHits) / float64(st.MemoHits+st.FeatureComputes)
	}
	var entries int64
	if sess.M.Memo != nil {
		entries = sess.M.Memo.Entries()
	}
	lc := h.Lifecycle()
	resp := StatsResponse{
		Pairs:         len(sess.M.Pairs),
		Rules:         len(sess.M.C.Rules),
		Matches:       sess.MatchCount(),
		MemoBytes:     memo,
		BitmapBytes:   bitmaps,
		MemoEntries:   entries,
		Stats:         st,
		MemoHitRate:   rate,
		LastOp:        reportOf(sess.LastOp),
		PersistErr:    h.PersistErr(),
		State:         lc.State,
		ResidentBytes: lc.ResidentBytes,
		Evictions:     lc.Evictions,
		Reloads:       lc.Reloads,
		Edits:         lc.Edits,
		MaxEdits:      lc.MaxEdits,
	}
	if !lc.LastTouch.IsZero() {
		resp.LastTouch = lc.LastTouch.UTC().Format(timeLayout)
	}
	if h.Durable() {
		resp.Durable = true
		resp.Seq = h.Seq()
		resp.JournalBytes = h.JournalBytes()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) hVerify(w http.ResponseWriter, r *http.Request) {
	h, ok := s.acquire(w, r, sessionstore.ModeRead)
	if !ok {
		return
	}
	defer h.Release()
	if err := h.Session().Verify(); err != nil {
		writeJSON(w, http.StatusOK, VerifyResponse{OK: false, Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, VerifyResponse{OK: true})
}

// hSnapshot streams the session in persist format — the same bytes
// emdebug's save command writes, so a session can move between the
// service and the CLIs.
func (s *Server) hSnapshot(w http.ResponseWriter, r *http.Request) {
	h, ok := s.acquire(w, r, sessionstore.ModeRead)
	if !ok {
		return
	}
	defer h.Release()
	var buf bytes.Buffer
	if err := persist.Save(&buf, h.Session()); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = buf.WriteTo(w)
}
