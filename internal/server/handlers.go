package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"

	"rulematch/internal/block"
	"rulematch/internal/core"
	"rulematch/internal/incremental"
	"rulematch/internal/persist"
	"rulematch/internal/rule"
	"rulematch/internal/sim"
	"rulematch/internal/table"
	"rulematch/internal/wal"
)

var errDraining = errors.New("server is draining")

// errCode maps an error to a status: cancelled contexts become 499
// in spirit (client closed request; reported as 503 since Go's
// net/http has no 499), validation errors 400.
func errCode(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// hCreate builds a session from inline tables plus either DSL rules
// and a blocker, or a persist snapshot, then runs the full
// materializing pass under the request context.
func (s *Server) hCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("name is required"))
		return
	}
	if s.durable {
		if err := validSessionName(req.Name); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	if req.TableA == "" || req.TableB == "" {
		writeErr(w, http.StatusBadRequest, errors.New("tableA and tableB are required"))
		return
	}
	a, err := table.ReadCSV(strings.NewReader(req.TableA), "A")
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("tableA: %w", err))
		return
	}
	b, err := table.ReadCSV(strings.NewReader(req.TableB), "B")
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("tableB: %w", err))
		return
	}
	cfg := s.cfg
	req.Config.Apply(&cfg)

	var sess *incremental.Session
	if len(req.Snapshot) > 0 {
		// Warm start: the snapshot carries function, pairs, memo and
		// bitmaps; only the engine knobs need applying.
		sess, err = persist.Load(bytes.NewReader(req.Snapshot), sim.Standard(), a, b)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		sess.Reconfigure(cfg)
	} else {
		sess, err = s.buildSession(r.Context(), a, b, cfg, &req)
		if err != nil {
			writeErr(w, errCode(err), err)
			return
		}
	}
	// Register the session's own tables, not the parses above: a warm
	// start from a snapshot with appended records rebuilds extended
	// tables inside persist.Load.
	ds := newDebugSession(req.Name, sess, sess.M.C.A, sess.M.C.B)
	if err := s.add(ds); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	// The session is registered; give it its durable store (or degrade
	// to ephemeral) under the write lock before anyone can edit it.
	ds.mu.Lock()
	s.attachStore(ds)
	ds.mu.Unlock()
	writeJSON(w, http.StatusCreated, infoOf(ds))
}

// buildSession is the cold-start path: parse, block, compile, run.
func (s *Server) buildSession(ctx context.Context, a, b *table.Table, cfg core.Config, req *CreateSessionRequest) (*incremental.Session, error) {
	if req.Rules == "" {
		return nil, errors.New("rules (or a snapshot) are required")
	}
	if (req.Block == "") == (req.BlockTokens == "") {
		return nil, errors.New("exactly one of block or blockTokens is required")
	}
	f, err := rule.ParseFunction(req.Rules)
	if err != nil {
		return nil, fmt.Errorf("parse rules: %w", err)
	}
	var blocker block.DeltaBlocker
	if req.Block != "" {
		blocker = block.AttrEquivalence{Attr: req.Block}
	} else {
		blocker = block.TokenOverlap{Attr: req.BlockTokens, MinShared: 1, MaxTokenFreq: b.Len() / 10}
	}
	pairs, err := blocker.Pairs(a, b)
	if err != nil {
		return nil, err
	}
	c, err := core.Compile(f, sim.Standard(), a, b)
	if err != nil {
		return nil, err
	}
	sess := incremental.NewSessionConfig(c, pairs, cfg)
	// Keep the blocker on the session so the records endpoint can block
	// appended records incrementally.
	sess.Blocker = blocker
	if err := sess.Run(ctx); err != nil {
		return nil, err
	}
	return sess, nil
}

func infoOf(ds *debugSession) SessionInfo {
	return SessionInfo{
		Name:    ds.name,
		Pairs:   ds.sess.LivePairCount(),
		Rules:   len(ds.sess.M.C.Rules),
		Matches: ds.sess.MatchCount(),
		LastOp:  ds.sess.LastOp.Op,
	}
}

func (s *Server) hList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]*debugSession, 0, len(s.sessions))
	for _, ds := range s.sessions {
		names = append(names, ds)
	}
	s.mu.RUnlock()
	out := SessionList{Sessions: []SessionInfo{}}
	for _, ds := range names {
		ds.mu.RLock()
		out.Sessions = append(out.Sessions, infoOf(ds))
		ds.mu.RUnlock()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) hGet(w http.ResponseWriter, r *http.Request) {
	ds, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	writeJSON(w, http.StatusOK, infoOf(ds))
}

func (s *Server) hDelete(w http.ResponseWriter, r *http.Request) {
	ds, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if !s.remove(ds.name) {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no session %q", ds.name))
		return
	}
	ds.mu.Lock()
	if ds.store != nil {
		// Deleting the session deletes its durable home too.
		if err := ds.store.Destroy(); err != nil {
			log.Printf("emserve: destroy session %q store: %v", ds.name, err)
		}
		ds.store = nil
	}
	ds.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) hRules(w http.ResponseWriter, r *http.Request) {
	ds, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	sess := ds.sess
	out := RuleList{Rules: make([]RuleInfo, len(sess.M.C.Rules))}
	for ri := range sess.M.C.Rules {
		cr := &sess.M.C.Rules[ri]
		info := RuleInfo{Index: ri, Name: cr.Name, Preds: make([]PredInfo, len(cr.Preds))}
		if sess.St != nil {
			info.TrueCount = sess.St.RuleTrue[ri].Count()
		}
		for pj := range cr.Preds {
			p := &cr.Preds[pj]
			feat := sess.M.C.Features[p.Feat].Feature
			pi := PredInfo{
				Index: pj, Key: p.Key,
				Sim: feat.Sim, AttrA: feat.AttrA, AttrB: feat.AttrB,
				Op: p.Op.String(), Threshold: p.Threshold,
			}
			if sess.St != nil {
				pi.FalseCount = sess.St.PredFalse[ri][pj].Count()
			}
			info.Preds[pj] = pi
		}
		out.Rules[ri] = info
	}
	writeJSON(w, http.StatusOK, out)
}

// resolveRule turns an index-or-name rule reference into an index.
func resolveRule(sess *incremental.Session, idx int, name string) (int, error) {
	if name == "" {
		return idx, nil
	}
	for ri := range sess.M.C.Rules {
		if sess.M.C.Rules[ri].Name == name {
			return ri, nil
		}
	}
	return 0, fmt.Errorf("no rule named %q", name)
}

// hEdit applies one incremental operation (Algorithms 7–10) under the
// session's write lock.
func (s *Server) hEdit(w http.ResponseWriter, r *http.Request) {
	ds, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req EditRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	sess := ds.sess
	ri, err := resolveRule(sess, req.Rule, req.RuleName)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	switch req.Op {
	case "add_predicate":
		var p rule.Predicate
		if p, err = rule.ParsePredicate(req.Predicate); err == nil {
			err = sess.AddPredicate(ri, p)
		}
	case "remove_predicate":
		err = sess.RemovePredicate(ri, req.Pred)
	case "tighten":
		err = sess.TightenPredicate(ri, req.Pred, req.Threshold)
	case "relax":
		err = sess.RelaxPredicate(ri, req.Pred, req.Threshold)
	case "set_threshold":
		err = sess.SetThreshold(ri, req.Pred, req.Threshold)
	case "add_rule":
		var nr rule.Rule
		if nr, err = rule.ParseRule(req.RuleSrc); err == nil {
			err = sess.AddRule(nr)
		}
	case "remove_rule":
		err = sess.RemoveRule(ri)
	default:
		err = fmt.Errorf("unknown op %q (want add_predicate, remove_predicate, tighten, relax, set_threshold, add_rule or remove_rule)", req.Op)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Journal the committed edit before acknowledging it. The record
	// stores the resolved rule index and the same op names wal.Apply
	// replays, so recovery repeats exactly this operation.
	src := req.Predicate
	if req.Op == "add_rule" {
		src = req.RuleSrc
	}
	s.recordEdit(ds, wal.Record{
		Op: req.Op, Rule: ri, Pred: req.Pred,
		Threshold: req.Threshold, Src: src,
	})
	writeJSON(w, http.StatusOK, EditResponse{
		Report:  reportOf(sess.LastOp),
		Matches: sess.MatchCount(),
		Rules:   len(sess.M.C.Rules),
	})
}

// hRecords applies a batch of record deletes and appends under the
// session's write lock. Deletes go first so retired records never pair
// against the new ones; each kind journals as its own record
// (record_delete, then record_append), in the same order recovery
// replays them. The whole request is validated before anything is
// applied — including that both journal records fit the WAL's record
// size limit, so an oversized batch fails the request instead of
// degrading the session to ephemeral at journaling time.
func (s *Server) hRecords(w http.ResponseWriter, r *http.Request) {
	ds, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req RecordsRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.AppendA)+len(req.AppendB)+len(req.DeleteA)+len(req.DeleteB) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("empty batch: nothing to append or delete"))
		return
	}
	aRecs := rowsToRecords(req.AppendA)
	bRecs := rowsToRecords(req.AppendB)
	ds.mu.Lock()
	defer ds.mu.Unlock()
	sess := ds.sess
	if err := sess.ValidateAppend(aRecs, bRecs); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if ds.store != nil {
		if err := checkJournalable(&req, aRecs, bRecs); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	var resp RecordsResponse
	if len(req.DeleteA)+len(req.DeleteB) > 0 {
		if err := sess.DeleteRecords(req.DeleteA, req.DeleteB); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		resp.Deleted = len(req.DeleteA) + len(req.DeleteB)
		rep := reportOf(sess.LastOp)
		resp.DeleteReport = &rep
		s.recordEdit(ds, wal.Record{Op: "record_delete", DelA: req.DeleteA, DelB: req.DeleteB})
	}
	if len(aRecs)+len(bRecs) > 0 {
		if err := sess.AddRecords(aRecs, bRecs); err != nil {
			writeErr(w, errCode(err), err)
			return
		}
		resp.Appended = len(aRecs) + len(bRecs)
		rep := reportOf(sess.LastOp)
		resp.AppendReport = &rep
		s.recordEdit(ds, wal.Record{Op: "record_append", RecsA: aRecs, RecsB: bRecs})
	}
	resp.Matches = sess.MatchCount()
	resp.Pairs = sess.LivePairCount()
	writeJSON(w, http.StatusOK, resp)
}

// rowsToRecords converts wire rows to table records.
func rowsToRecords(rows []RecordRow) []table.Record {
	if len(rows) == 0 {
		return nil
	}
	out := make([]table.Record, len(rows))
	for i, r := range rows {
		out[i] = table.Record{ID: r.ID, Values: r.Values}
	}
	return out
}

// checkJournalable verifies both journal records a request would emit
// fit the WAL's per-record size limit (with slack for the sequence
// number assigned at append time).
func checkJournalable(req *RecordsRequest, aRecs, bRecs []table.Record) error {
	const seqSlack = 32
	for _, rec := range []wal.Record{
		{Op: "record_delete", DelA: req.DeleteA, DelB: req.DeleteB},
		{Op: "record_append", RecsA: aRecs, RecsB: bRecs},
	} {
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("encode journal record: %w", err)
		}
		if len(payload)+seqSlack > wal.MaxRecordBytes {
			return fmt.Errorf("batch too large to journal: %d bytes (limit %d); split it into smaller batches",
				len(payload), wal.MaxRecordBytes)
		}
	}
	return nil
}

func reportOf(op incremental.OpReport) OpReport {
	return OpReport{
		Op:             op.Op,
		PairsExamined:  op.PairsExamined,
		OwnershipMoves: op.OwnershipMoves,
		PairsAdded:     op.PairsAdded,
		PairsRemoved:   op.PairsRemoved,
		Stats:          op.Stats,
	}
}

// hRun re-materializes from scratch (with the warm memo) under the
// request context; a cancelled run leaves the previous state standing.
func (s *Server) hRun(w http.ResponseWriter, r *http.Request) {
	ds, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if err := ds.sess.Run(r.Context()); err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, RunResponse{
		Report:  reportOf(ds.sess.LastOp),
		Matches: ds.sess.MatchCount(),
	})
}

// hSweep evaluates candidate thresholds for one predicate. The sweep
// reads session state and warms the memo (hence the write lock) but
// never moves a live threshold; cancellation mid-sweep leaves the
// session untouched.
func (s *Server) hSweep(w http.ResponseWriter, r *http.Request) {
	ds, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req SweepRequest
	if err := s.decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	sess := ds.sess
	ri, err := resolveRule(sess, req.Rule, req.RuleName)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	thresholds := req.Thresholds
	if len(thresholds) == 0 {
		steps := req.Steps
		if steps == 0 {
			steps = 9
		}
		thresholds = incremental.DefaultSweep(steps)
	}
	points, err := sess.SweepThresholdParallelCtx(r.Context(), ri, req.Pred, thresholds, sess.M.Workers)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	out := SweepResponse{Points: make([]SweepPoint, len(points))}
	for i, p := range points {
		out.Points[i] = SweepPoint{Threshold: p.Threshold, Matches: p.Matched.Count()}
	}
	writeJSON(w, http.StatusOK, out)
}

// hMatches pages through the matched pairs. The cursor is a candidate
// pair index (start at 0); NextCursor is -1 on the last page.
func (s *Server) hMatches(w http.ResponseWriter, r *http.Request) {
	ds, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	cursor, limit := 0, 100
	if v := r.URL.Query().Get("cursor"); v != "" {
		if cursor, err = strconv.Atoi(v); err != nil || cursor < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad cursor %q", v))
			return
		}
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
	}
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	sess := ds.sess
	page := MatchPage{Matches: []MatchedPair{}, NextCursor: -1, Total: sess.MatchCount()}
	for pi := cursor; pi < len(sess.M.Pairs); pi++ {
		if !sess.St.Matched.Get(pi) {
			continue
		}
		if len(page.Matches) == limit {
			page.NextCursor = pi
			break
		}
		p := sess.M.Pairs[pi]
		page.Matches = append(page.Matches, MatchedPair{
			Pair: pi,
			IDA:  ds.a.Records[p.A].ID,
			IDB:  ds.b.Records[p.B].ID,
			Rule: owningRule(sess, pi),
		})
	}
	writeJSON(w, http.StatusOK, page)
}

// owningRule names the rule whose RuleTrue bit covers the pair.
func owningRule(sess *incremental.Session, pi int) string {
	for ri := range sess.M.C.Rules {
		if sess.St.RuleTrue[ri].Get(pi) {
			return sess.M.C.Rules[ri].Name
		}
	}
	return ""
}

func (s *Server) hStats(w http.ResponseWriter, r *http.Request) {
	ds, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	sess := ds.sess
	memo, bitmaps := sess.MemoryBytes()
	st := sess.M.Stats
	rate := 0.0
	if st.MemoHits+st.FeatureComputes > 0 {
		rate = float64(st.MemoHits) / float64(st.MemoHits+st.FeatureComputes)
	}
	var entries int64
	if sess.M.Memo != nil {
		entries = sess.M.Memo.Entries()
	}
	resp := StatsResponse{
		Pairs:       len(sess.M.Pairs),
		Rules:       len(sess.M.C.Rules),
		Matches:     sess.MatchCount(),
		MemoBytes:   memo,
		BitmapBytes: bitmaps,
		MemoEntries: entries,
		Stats:       st,
		MemoHitRate: rate,
		LastOp:      reportOf(sess.LastOp),
		PersistErr:  ds.persistErr,
	}
	if ds.store != nil {
		resp.Durable = true
		resp.Seq = ds.store.Seq()
		resp.JournalBytes = ds.store.JournalSize()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) hVerify(w http.ResponseWriter, r *http.Request) {
	ds, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	if err := ds.sess.Verify(); err != nil {
		writeJSON(w, http.StatusOK, VerifyResponse{OK: false, Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, VerifyResponse{OK: true})
}

// hSnapshot streams the session in persist format — the same bytes
// emdebug's save command writes, so a session can move between the
// service and the CLIs.
func (s *Server) hSnapshot(w http.ResponseWriter, r *http.Request) {
	ds, err := s.lookup(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	var buf bytes.Buffer
	if err := persist.Save(&buf, ds.sess); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = buf.WriteTo(w)
}
