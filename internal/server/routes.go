package server

import "net/http"

// The route table is the single source of truth for the v1 API: both
// Handler (mux registration, replica write-gating, instrumentation)
// and the OpenAPI document generator walk this slice. Adding an
// endpoint here registers it and documents it in one step; an endpoint
// that exists but is absent from the table is a bug the coverage test
// catches.

// querySpec documents one query parameter.
type querySpec struct {
	Name string
	Type string // OpenAPI primitive: string, integer, boolean
	Doc  string
}

// routeSpec declares one endpoint: its mux pattern, its wire types for
// the OpenAPI document, the error codes it can return, and whether it
// is a write (writes are refused on replicas with 421 not_primary).
type routeSpec struct {
	Method  string
	Path    string
	Summary string
	// Write marks routes that mutate session state through the journal
	// (or create/destroy sessions). On a replica they answer 421
	// not_primary; reads, runs and sweeps serve everywhere.
	Write bool
	// Request and Response are zero values of the wire types; nil means
	// no body. Binary marks an application/octet-stream response.
	Request  any
	Response any
	Binary   bool
	Query    []querySpec
	// ErrCodes lists the machine codes this endpoint can produce, in
	// addition to unavailable (the drain gate covers every route).
	ErrCodes []string
	handler  func(*Server) http.HandlerFunc
}

// consistentQuery documents the read-your-writes barrier parameters
// shared by the barrier-capable GET routes (see waitConsistent).
func consistentQuery() []querySpec {
	return []querySpec{
		{Name: "consistent", Type: "integer", Doc: "read barrier: hold the request until this node has applied the given journal sequence (thread a write's Em-Seq here); 503 unavailable with Retry-After on timeout"},
		{Name: "wait", Type: "integer", Doc: "barrier deadline in milliseconds (default 5000, max 30000); only meaningful with consistent"},
	}
}

// routes returns the v1 route table. The order is the order endpoints
// appear in the OpenAPI document.
func routes() []routeSpec {
	return []routeSpec{
		{
			Method: "POST", Path: "/v1/sessions",
			Summary: "Create a session from inline tables plus rules and a blocker, or a persist snapshot",
			Write:   true,
			Request: CreateSessionRequest{}, Response: SessionInfo{},
			ErrCodes: []string{CodeInvalidRequest, CodeConflict, CodeQuotaExceeded, CodeCancelled, CodeNotPrimary},
			handler:  func(s *Server) http.HandlerFunc { return s.hCreate },
		},
		{
			Method: "GET", Path: "/v1/sessions",
			Summary:  "List every session (resident or evicted) from cached metadata",
			Response: SessionList{},
			handler:  func(s *Server) http.HandlerFunc { return s.hList },
		},
		{
			Method: "GET", Path: "/v1/sessions/{name}",
			Summary:  "Describe one session (touches it: an evicted session reloads)",
			Response: SessionInfo{},
			Query:    consistentQuery(),
			ErrCodes: []string{CodeInvalidRequest, CodeNotFound, CodeUnavailable, CodeInternal},
			handler:  func(s *Server) http.HandlerFunc { return s.hGet },
		},
		{
			Method: "DELETE", Path: "/v1/sessions/{name}",
			Summary:  "Delete a session and its durable home",
			Write:    true,
			ErrCodes: []string{CodeNotFound, CodeNotPrimary},
			handler:  func(s *Server) http.HandlerFunc { return s.hDelete },
		},
		{
			Method: "GET", Path: "/v1/sessions/{name}/rules",
			Summary:  "List rules with per-predicate thresholds, false counts and ownership counts",
			Response: RuleList{},
			Query:    consistentQuery(),
			ErrCodes: []string{CodeInvalidRequest, CodeNotFound, CodeUnavailable, CodeInternal},
			handler:  func(s *Server) http.HandlerFunc { return s.hRules },
		},
		{
			Method: "POST", Path: "/v1/sessions/{name}/edits",
			Summary: "Apply one incremental rule-set operation (Algorithms 7-10)",
			Write:   true,
			Request: EditRequest{}, Response: EditResponse{},
			ErrCodes: []string{CodeInvalidRequest, CodeNotFound, CodeQuotaExceeded, CodeNotPrimary, CodeStaleEpoch, CodeInternal},
			handler:  func(s *Server) http.HandlerFunc { return s.hEdit },
		},
		{
			Method: "POST", Path: "/v1/sessions/{name}/records",
			Summary: "Append and/or delete records in one validated batch (deletes first)",
			Write:   true,
			Request: RecordsRequest{}, Response: RecordsResponse{},
			ErrCodes: []string{CodeInvalidRequest, CodeNotFound, CodeQuotaExceeded, CodeCancelled, CodeNotPrimary, CodeStaleEpoch, CodeInternal},
			handler:  func(s *Server) http.HandlerFunc { return s.hRecords },
		},
		{
			Method: "POST", Path: "/v1/sessions/{name}/run",
			Summary:  "Re-materialize from scratch with the warm memo (state-preserving on cancel)",
			Response: RunResponse{},
			ErrCodes: []string{CodeNotFound, CodeCancelled, CodeInternal},
			handler:  func(s *Server) http.HandlerFunc { return s.hRun },
		},
		{
			Method: "POST", Path: "/v1/sessions/{name}/sweep",
			Summary: "Evaluate candidate thresholds for one predicate without moving it",
			Request: SweepRequest{}, Response: SweepResponse{},
			ErrCodes: []string{CodeInvalidRequest, CodeNotFound, CodeCancelled, CodeInternal},
			handler:  func(s *Server) http.HandlerFunc { return s.hSweep },
		},
		{
			Method: "GET", Path: "/v1/sessions/{name}/matches",
			Summary:  "Page through matched pairs with an opaque cursor",
			Response: MatchPage{},
			Query: append([]querySpec{
				{Name: "cursor", Type: "string", Doc: "opaque page token from a previous response's nextCursor"},
				{Name: "limit", Type: "integer", Doc: "page size (default 100)"},
				{Name: "offset", Type: "integer", Doc: "deprecated: numeric pair-index offset; answered with a Deprecation header"},
			}, consistentQuery()...),
			ErrCodes: []string{CodeInvalidRequest, CodeNotFound, CodeUnavailable, CodeInternal},
			handler:  func(s *Server) http.HandlerFunc { return s.hMatches },
		},
		{
			Method: "GET", Path: "/v1/sessions/{name}/stats",
			Summary:  "Memory footprint, work counters, lifecycle, durability and replication state",
			Response: StatsResponse{},
			Query:    consistentQuery(),
			ErrCodes: []string{CodeInvalidRequest, CodeNotFound, CodeUnavailable, CodeInternal},
			handler:  func(s *Server) http.HandlerFunc { return s.hStats },
		},
		{
			Method: "POST", Path: "/v1/sessions/{name}/verify",
			Summary:  "Check the incremental state against a from-scratch evaluation",
			Response: VerifyResponse{},
			ErrCodes: []string{CodeNotFound, CodeInternal},
			handler:  func(s *Server) http.HandlerFunc { return s.hVerify },
		},
		{
			Method: "GET", Path: "/v1/sessions/{name}/snapshot",
			Summary:  "Stream the session in persist format (interchangeable with the CLIs)",
			Binary:   true,
			Query:    consistentQuery(),
			ErrCodes: []string{CodeInvalidRequest, CodeNotFound, CodeUnavailable, CodeInternal},
			handler:  func(s *Server) http.HandlerFunc { return s.hSnapshot },
		},
		{
			Method: "GET", Path: "/v1/sessions/{name}/wal",
			Summary: "Stream framed journal records after a cursor (long-polls when caught up)",
			Binary:  true,
			Query: []querySpec{
				{Name: "from", Type: "integer", Doc: "last sequence the caller has applied; the response starts at from+1"},
				{Name: "wait", Type: "integer", Doc: "long-poll budget in milliseconds when caught up (default 0, max 30000)"},
			},
			ErrCodes: []string{CodeInvalidRequest, CodeNotFound, CodeNotDurable, CodeWalRotated, CodeInternal},
			handler:  func(s *Server) http.HandlerFunc { return s.hWal },
		},
		{
			Method: "GET", Path: "/v1/sessions/{name}/bootstrap",
			Summary:  "Fetch base tables plus a seq-stamped snapshot: everything a follower needs to start",
			Response: BootstrapResponse{},
			ErrCodes: []string{CodeNotFound, CodeNotDurable, CodeInternal},
			handler:  func(s *Server) http.HandlerFunc { return s.hBootstrap },
		},
		{
			Method: "POST", Path: "/v1/promote",
			Summary: "Promote this replica to primary under a new fenced epoch (admin; bearer token when configured)",
			// Deliberately not Write: write routes answer 421 on
			// replicas, and promotion only makes sense on a replica.
			Response: PromoteResponse{},
			ErrCodes: []string{CodeUnauthorized, CodeConflict, CodeInternal},
			handler:  func(s *Server) http.HandlerFunc { return s.hPromote },
		},
		{
			Method: "GET", Path: "/v1/openapi.json",
			Summary: "This document, generated from the same route table the mux serves",
			handler: func(s *Server) http.HandlerFunc { return s.hOpenAPI },
		},
	}
}

// requirePrimary gates a write route: replicas answer 421 not_primary
// with the primary's base URL in the envelope.
func (s *Server) requirePrimary(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Replica() {
			s.writeNotPrimary(w)
			return
		}
		h(w, r)
	}
}
