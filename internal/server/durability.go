package server

import "rulematch/internal/sessionstore"

// Durability is the store's durability configuration, re-exported so
// cmd/emserve keeps configuring the server without importing the
// store package directly.
type Durability = sessionstore.Durability

// EnableDurability switches the session store into durable mode. It
// creates the datadir and probes that it is writable; an error means
// the caller should fall back to ephemeral mode (every session in
// memory only, no eviction — the memory budget degrades to a hard
// admission cap).
func (s *Server) EnableDurability(d Durability) error {
	return s.store.EnableDurability(d)
}

// Durable reports whether the server persists sessions.
func (s *Server) Durable() bool { return s.store.Durable() }

// RecoverSessions rebuilds every session found in the datadir: tables
// from CSV, state from the last good snapshot, then the journal suffix
// replayed (a torn tail is truncated). Returns the number recovered.
func (s *Server) RecoverSessions() (int, error) { return s.store.RecoverAll() }

// CloseSessions syncs and closes every session's journal. Called after
// the HTTP server has drained, so no edits are in flight.
func (s *Server) CloseSessions() { s.store.CloseAll() }
