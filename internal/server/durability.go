package server

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rulematch/internal/faultio"
	"rulematch/internal/sim"
	"rulematch/internal/wal"
)

// Durability configures the optional crash-safe session store: every
// session gets a directory under Dir holding its tables, a checksummed
// snapshot and an edit journal (see internal/wal). Committed edits are
// journaled before the HTTP response is written, so a kill -9 between
// responses never loses an acknowledged edit (modulo the sync policy).
type Durability struct {
	// Dir is the data directory; one subdirectory per session.
	Dir string
	// Policy is the journal fsync policy (always / interval / never).
	Policy wal.SyncPolicy
	// CompactAt is the journal size that triggers compaction;
	// <=0 means wal.DefaultCompactBytes.
	CompactAt int64
	// FS is the filesystem seam; nil means the real one. Tests inject
	// faults here.
	FS faultio.FS
}

// EnableDurability switches the server into durable mode. It creates
// Dir and probes that it is writable; an error means the caller should
// fall back to ephemeral mode (every session in memory only).
func (s *Server) EnableDurability(d Durability) error {
	if d.FS == nil {
		d.FS = faultio.OS
	}
	if err := d.FS.MkdirAll(d.Dir, 0o755); err != nil {
		return fmt.Errorf("create datadir: %w", err)
	}
	// Probe writability now, not on the first session create.
	probe := filepath.Join(d.Dir, ".probe")
	f, err := d.FS.OpenFile(probe, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("datadir not writable: %w", err)
	}
	_ = f.Close()
	_ = d.FS.Remove(probe)
	s.dur = d
	s.durable = true
	return nil
}

// Durable reports whether the server persists sessions.
func (s *Server) Durable() bool { return s.durable }

// validSessionName restricts durable session names to filesystem-safe
// tokens: they become directory names under the datadir.
func validSessionName(name string) error {
	if name == "" || len(name) > 128 {
		return errors.New("session name must be 1-128 characters")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("session name %q: durable sessions allow only letters, digits, '.', '_' and '-'", name)
		}
	}
	if name == "." || name == ".." {
		return fmt.Errorf("session name %q is reserved", name)
	}
	return nil
}

// sessionDir is the on-disk home of one durable session.
func (s *Server) sessionDir(name string) string { return filepath.Join(s.dur.Dir, name) }

// attachStore gives a freshly created session its durable store. A
// failure degrades the session to ephemeral (logged, counted, visible
// in /stats) rather than failing the create: losing durability is
// better than losing the analyst's session.
func (s *Server) attachStore(ds *debugSession) {
	if !s.durable {
		return
	}
	st, err := wal.Create(s.dur.FS, s.sessionDir(ds.name), s.dur.Policy, ds.sess, ds.a, ds.b)
	if err != nil {
		s.degrade(ds, fmt.Errorf("create store: %w", err))
		return
	}
	st.CompactAt = s.dur.CompactAt
	ds.store = st
}

// degrade flips a session to ephemeral mode after a persistence
// failure. Caller must hold the session's write lock (or own the
// session exclusively, as during create).
func (s *Server) degrade(ds *debugSession, err error) {
	if ds.store != nil {
		_ = ds.store.Close()
		ds.store = nil
	}
	ds.persistErr = err.Error()
	ephemeralSessions.Add(1)
	log.Printf("emserve: session %q degraded to ephemeral: %v", ds.name, err)
}

// recordEdit journals one committed edit. Must be called under the
// session's write lock, after the edit was applied in memory and
// before the HTTP response is written — the response acknowledges
// durability. A journal failure degrades the session instead of
// failing the edit.
func (s *Server) recordEdit(ds *debugSession, rec wal.Record) {
	if ds.store == nil {
		return
	}
	if err := ds.store.RecordEdit(ds.sess, rec); err != nil {
		s.degrade(ds, err)
	}
}

// RecoverSessions scans the datadir and rebuilds every session found
// there: tables from CSV, state from the last good snapshot, then the
// journal suffix replayed (a torn tail is truncated). A directory that
// fails to recover is logged and left on disk untouched for manual
// inspection; it does not block the others. Returns the number of
// sessions recovered.
func (s *Server) RecoverSessions() (int, error) {
	if !s.durable {
		return 0, nil
	}
	entries, err := os.ReadDir(s.dur.Dir)
	if err != nil {
		return 0, fmt.Errorf("scan datadir: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		dir := s.sessionDir(name)
		if _, err := os.Stat(filepath.Join(dir, wal.SnapshotFile)); err != nil {
			continue // not a session directory
		}
		st, rec, err := wal.Open(s.dur.FS, dir, s.dur.Policy, sim.Standard())
		if err != nil {
			log.Printf("emserve: session %q not recovered (left on disk): %v", name, err)
			continue
		}
		st.CompactAt = s.dur.CompactAt
		rec.Session.Reconfigure(s.cfg)
		ds := newDebugSession(name, rec.Session, rec.A, rec.B)
		ds.store = st
		if err := s.add(ds); err != nil {
			_ = st.Close()
			log.Printf("emserve: session %q not recovered: %v", name, err)
			continue
		}
		recoveredSessions.Add(1)
		n++
		torn := ""
		if rec.Torn {
			torn = ", torn journal tail truncated"
		}
		log.Printf("emserve: recovered session %q (seq %d, %d journal records replayed%s)",
			name, st.Seq(), rec.Replayed, torn)
	}
	return n, nil
}

// CloseSessions syncs and closes every session's journal. Called after
// the HTTP server has drained, so no edits are in flight.
func (s *Server) CloseSessions() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ds := range s.sessions {
		ds.mu.Lock()
		if ds.store != nil {
			if err := ds.store.Close(); err != nil {
				log.Printf("emserve: close session %q journal: %v", ds.name, err)
			}
			ds.store = nil
		}
		ds.mu.Unlock()
	}
}
