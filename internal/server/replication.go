package server

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"rulematch/internal/persist"
	"rulematch/internal/sessionstore"
)

// Replication wire protocol. A follower bootstraps once from
// GET .../bootstrap (base tables + a seq-stamped snapshot), then tails
// GET .../wal?from=<applied>, applying each framed record in order.
// When compaction rotates the journal past a follower's cursor the WAL
// endpoint answers 410 wal_rotated and the follower re-bootstraps.

// maxWalWait caps the WAL endpoint's long-poll budget.
const maxWalWait = 30 * time.Second

// walPollInterval is how often the long poll re-checks the journal.
// The check acquires and releases the session's read lock each round,
// so a waiting poll never blocks an edit.
const walPollInterval = 25 * time.Millisecond

// Em-* headers carry replication coordinates alongside the binary
// frame stream.
const (
	// HeaderSeq is the last sequence included in the response body
	// (equal to ?from when the body is empty).
	HeaderSeq = "Em-Seq"
	// HeaderSnapshotSeq is the primary's current snapshot coverage; a
	// follower whose cursor falls below it must re-bootstrap.
	HeaderSnapshotSeq = "Em-Snapshot-Seq"
	// HeaderEpoch carries the replication epoch. On WAL and write
	// responses it reports the epoch the session's journal is writing
	// under; on write requests it asserts the highest epoch the client
	// has seen — a node behind that epoch fences itself instead of
	// accepting the write (see CodeStaleEpoch).
	HeaderEpoch = "Em-Epoch"
)

// hWal streams framed journal records with Seq > from. When the
// follower is caught up and ?wait is set, the handler long-polls: it
// re-checks the journal every walPollInterval without holding the
// session lock across the wait, so edits proceed unimpeded.
func (s *Server) hWal(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var from uint64
	var err error
	if v := q.Get("from"); v != "" {
		if from, err = strconv.ParseUint(v, 10, 64); err != nil {
			writeErr(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("bad from: want a decimal sequence number"))
			return
		}
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			writeErr(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("bad wait: want milliseconds"))
			return
		}
		wait = time.Duration(ms) * time.Millisecond
		if wait > maxWalWait {
			wait = maxWalWait
		}
	}
	deadline := time.Now().Add(wait)
	for {
		frames, last, snapSeq, epoch, ok := s.walPoll(w, r, from)
		if !ok {
			return // error response already written
		}
		if len(frames) > 0 || !time.Now().Before(deadline) {
			w.Header().Set(HeaderSeq, strconv.FormatUint(last, 10))
			w.Header().Set(HeaderSnapshotSeq, strconv.FormatUint(snapSeq, 10))
			w.Header().Set(HeaderEpoch, strconv.FormatUint(epoch, 10))
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(frames)
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(walPollInterval):
		}
	}
}

// walPoll does one locked check of the session's journal. It writes
// the error response itself and reports ok=false when the request
// cannot proceed. Lock scope is one call — the long poll's waits
// happen outside, with no handle held.
func (s *Server) walPoll(w http.ResponseWriter, r *http.Request, from uint64) (frames []byte, last, snapSeq, epoch uint64, ok bool) {
	h, acquired := s.acquire(w, r, sessionstore.ModeRead)
	if !acquired {
		return nil, 0, 0, 0, false
	}
	defer h.Release()
	if !h.Durable() {
		writeErr(w, http.StatusConflict, CodeNotDurable, errors.New("session is not durable: no journal to ship"))
		return nil, 0, 0, 0, false
	}
	snapSeq = h.SnapshotSeq()
	epoch = h.Epoch()
	frames, last, err := h.WalFrames(from)
	if err != nil {
		w.Header().Set(HeaderSnapshotSeq, strconv.FormatUint(snapSeq, 10))
		writeWalErr(w, err)
		return nil, 0, 0, 0, false
	}
	return frames, last, snapSeq, epoch, true
}

// hBootstrap ships everything a follower needs to start replicating a
// session: the base table CSVs (what the snapshot's base lengths refer
// to) and a snapshot of the current state stamped with the journal
// sequence it covers. A follower loads the snapshot against the base
// tables and then tails /wal?from=<seq>.
func (s *Server) hBootstrap(w http.ResponseWriter, r *http.Request) {
	h, ok := s.acquire(w, r, sessionstore.ModeRead)
	if !ok {
		return
	}
	defer h.Release()
	if !h.Durable() {
		writeErr(w, http.StatusConflict, CodeNotDurable, errors.New("session is not durable: nothing to bootstrap from"))
		return
	}
	a, b, err := h.BaseTables()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	var buf bytes.Buffer
	if err := persist.Save(&buf, h.Session(), persist.WithSeq(h.Seq())); err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, BootstrapResponse{
		Name:     h.Name(),
		Tenant:   h.Tenant(),
		Seq:      h.Seq(),
		Epoch:    h.Epoch(),
		TableA:   a,
		TableB:   b,
		Snapshot: buf.Bytes(),
	})
}

// Read-your-writes barrier. A client that wrote through the primary
// received the journal sequence of its write in the Em-Seq response
// header; passing it back as ?consistent=<seq> on a GET makes a
// replica hold the request — bounded, re-checking on the same cadence
// as the WAL long poll — until its applied sequence reaches it, and
// answer 503 unavailable (with Retry-After) if it cannot within the
// deadline. On a primary the barrier is satisfied by the journal
// itself.

// defaultBarrierWait is the barrier's deadline when the request does
// not set ?wait=.
const defaultBarrierWait = 5 * time.Second

// waitConsistent enforces the ?consistent=<seq> read barrier. It
// returns false after writing the error response itself; true means
// the handler may proceed (including the no-barrier case). It never
// holds a session handle across a wait.
func (s *Server) waitConsistent(w http.ResponseWriter, r *http.Request) bool {
	q := r.URL.Query()
	v := q.Get("consistent")
	if v == "" {
		return true
	}
	seq, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("bad consistent: want a decimal sequence number"))
		return false
	}
	wait := defaultBarrierWait
	if wv := q.Get("wait"); wv != "" {
		ms, err := strconv.Atoi(wv)
		if err != nil || ms < 0 {
			writeErr(w, http.StatusBadRequest, CodeInvalidRequest, errors.New("bad wait: want milliseconds"))
			return false
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	if wait > maxWalWait {
		wait = maxWalWait
	}
	name := r.PathValue("name")
	deadline := time.Now().Add(wait)
	for {
		applied, known := s.appliedSeq(name)
		if known && applied >= seq {
			return true
		}
		if !time.Now().Before(deadline) {
			writeErr(w, http.StatusServiceUnavailable, CodeUnavailable,
				fmt.Errorf("read barrier: applied sequence %d has not reached %d", applied, seq))
			return false
		}
		select {
		case <-r.Context().Done():
			writeErr(w, http.StatusServiceUnavailable, CodeCancelled, r.Context().Err())
			return false
		case <-time.After(walPollInterval):
		}
	}
}

// appliedSeq reports how much of the named session's history this node
// has: the replication cursor on a replica, the journal sequence on a
// primary. The primary check takes and releases a read handle per
// call — the barrier's waits happen with no handle held, so it can
// never block the very writes it is waiting for.
func (s *Server) appliedSeq(name string) (uint64, bool) {
	if s.Replica() {
		if s.replicaSrc == nil {
			return 0, false
		}
		return s.replicaSrc.AppliedSeq(name)
	}
	h, err := s.store.Acquire(name, sessionstore.ModeRead)
	if err != nil {
		return 0, false
	}
	defer h.Release()
	return h.Seq(), true
}
