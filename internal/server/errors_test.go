package server

import (
	"net/http"
	"strings"
	"testing"
)

// TestErrorEnvelope drives every endpoint into each reachable error
// class and asserts the uniform envelope: a machine code from the
// stable table plus a non-empty human message. The envelope shape —
// {"error":{"code":...,"message":...}} — is the API contract; clients
// branch on code, never on message text.
func TestErrorEnvelope(t *testing.T) {
	ts, srv := newTestServer(t)
	createSession(t, ts, "s1")

	cases := []struct {
		name     string
		method   string
		path     string
		body     any
		wantCode int
		wantErr  string
	}{
		// invalid_request: malformed bodies and bad parameters.
		{"create/missing-name", "POST", "/v1/sessions", CreateSessionRequest{TableA: "x", TableB: "y"}, 400, CodeInvalidRequest},
		{"create/missing-tables", "POST", "/v1/sessions", CreateSessionRequest{Name: "n"}, 400, CodeInvalidRequest},
		{"create/bad-csv", "POST", "/v1/sessions", CreateSessionRequest{Name: "n", TableA: "", TableB: tableBCSV}, 400, CodeInvalidRequest},
		{"create/bad-rules", "POST", "/v1/sessions", CreateSessionRequest{Name: "n2", TableA: tableACSV, TableB: tableBCSV, Rules: "rule bad: nonsense((", Block: "cat"}, 400, CodeInvalidRequest},
		{"edit/unknown-op", "POST", "/v1/sessions/s1/edits", EditRequest{Op: "nonsense"}, 400, CodeInvalidRequest},
		{"records/empty-batch", "POST", "/v1/sessions/s1/records", RecordsRequest{}, 400, CodeInvalidRequest},
		{"sweep/bad-rule", "POST", "/v1/sessions/s1/sweep", SweepRequest{RuleName: "nope"}, 400, CodeInvalidRequest},
		{"matches/bad-cursor", "GET", "/v1/sessions/s1/matches?cursor=@@", nil, 400, CodeInvalidRequest},
		{"matches/bad-limit", "GET", "/v1/sessions/s1/matches?limit=0", nil, 400, CodeInvalidRequest},

		// not_found: the {name} wildcard misses.
		{"get/missing", "GET", "/v1/sessions/nope", nil, 404, CodeNotFound},
		{"delete/missing", "DELETE", "/v1/sessions/nope", nil, 404, CodeNotFound},
		{"rules/missing", "GET", "/v1/sessions/nope/rules", nil, 404, CodeNotFound},
		{"edit/missing", "POST", "/v1/sessions/nope/edits", EditRequest{Op: "set_threshold"}, 404, CodeNotFound},
		{"records/missing", "POST", "/v1/sessions/nope/records", RecordsRequest{DeleteA: []string{"a0"}}, 404, CodeNotFound},
		{"run/missing", "POST", "/v1/sessions/nope/run", nil, 404, CodeNotFound},
		{"sweep/missing", "POST", "/v1/sessions/nope/sweep", SweepRequest{}, 404, CodeNotFound},
		{"matches/missing", "GET", "/v1/sessions/nope/matches", nil, 404, CodeNotFound},
		{"stats/missing", "GET", "/v1/sessions/nope/stats", nil, 404, CodeNotFound},
		{"verify/missing", "POST", "/v1/sessions/nope/verify", nil, 404, CodeNotFound},
		{"snapshot/missing", "GET", "/v1/sessions/nope/snapshot", nil, 404, CodeNotFound},
		{"wal/missing", "GET", "/v1/sessions/nope/wal", nil, 404, CodeNotFound},
		{"bootstrap/missing", "GET", "/v1/sessions/nope/bootstrap", nil, 404, CodeNotFound},

		// conflict: duplicate create; not_durable: WAL reads on an
		// ephemeral server.
		{"create/duplicate", "POST", "/v1/sessions", CreateSessionRequest{Name: "s1", TableA: tableACSV, TableB: tableBCSV, Rules: rulesDSL, Block: "cat"}, 409, CodeConflict},
		{"wal/not-durable", "GET", "/v1/sessions/s1/wal", nil, 409, CodeNotDurable},
		{"bootstrap/not-durable", "GET", "/v1/sessions/s1/bootstrap", nil, 409, CodeNotDurable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e ErrorResponse
			code := doJSON(t, tc.method, ts.URL+tc.path, tc.body, &e)
			if code != tc.wantCode {
				t.Fatalf("status = %d, want %d (envelope %+v)", code, tc.wantCode, e)
			}
			if e.Error.Code != tc.wantErr {
				t.Fatalf("code = %q, want %q", e.Error.Code, tc.wantErr)
			}
			if e.Error.Message == "" {
				t.Fatal("empty message")
			}
		})
	}

	// quota_exceeded: exhaust a fresh session's edit quota, then hit it
	// from both edit-class endpoints.
	srv.SetLimits(0, 0, 1)
	createSession(t, ts, "q")
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/q/edits", EditRequest{
		Op: "set_threshold", Rule: 0, Pred: 0, Threshold: 0.9,
	}, nil); code != http.StatusOK {
		t.Fatalf("quota-charging edit: status %d", code)
	}
	for _, tc := range []struct {
		name, path string
		body       any
	}{
		{"edit/quota", "/v1/sessions/q/edits", EditRequest{Op: "set_threshold", Rule: 0, Pred: 0, Threshold: 0.9}},
		{"records/quota", "/v1/sessions/q/records", RecordsRequest{DeleteA: []string{"a5"}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var e ErrorResponse
			if code := doJSON(t, "POST", ts.URL+tc.path, tc.body, &e); code != 429 || e.Error.Code != CodeQuotaExceeded {
				t.Fatalf("status %d code %q, want 429 quota_exceeded", code, e.Error.Code)
			}
		})
	}

	// unavailable: the drain gate covers every endpoint uniformly.
	srv.SetDraining(true)
	var e ErrorResponse
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions", nil, &e); code != 503 || e.Error.Code != CodeUnavailable {
		t.Fatalf("draining: status %d code %q", code, e.Error.Code)
	}
	srv.SetDraining(false)
}

// TestNotPrimaryEnvelope proves every write route on a replica answers
// 421 not_primary with the primary's URL, while reads keep working.
func TestNotPrimaryEnvelope(t *testing.T) {
	ts, srv := newTestServer(t)
	createSession(t, ts, "s1") // admitted before the role flips
	srv.SetPrimary("http://primary.example:8080")

	writes := []struct {
		method, path string
		body         any
	}{
		{"POST", "/v1/sessions", CreateSessionRequest{Name: "n", TableA: tableACSV, TableB: tableBCSV, Rules: rulesDSL, Block: "cat"}},
		{"DELETE", "/v1/sessions/s1", nil},
		{"POST", "/v1/sessions/s1/edits", EditRequest{Op: "set_threshold", Rule: 0, Pred: 0, Threshold: 0.9}},
		{"POST", "/v1/sessions/s1/records", RecordsRequest{DeleteA: []string{"a0"}}},
	}
	for _, wr := range writes {
		var e ErrorResponse
		code := doJSON(t, wr.method, ts.URL+wr.path, wr.body, &e)
		if code != http.StatusMisdirectedRequest {
			t.Fatalf("%s %s on replica: status %d", wr.method, wr.path, code)
		}
		if e.Error.Code != CodeNotPrimary || e.Error.Primary != "http://primary.example:8080" {
			t.Fatalf("%s %s envelope: %+v", wr.method, wr.path, e.Error)
		}
		if !strings.Contains(e.Error.Message, "primary") {
			t.Fatalf("message does not mention the primary: %q", e.Error.Message)
		}
	}

	// Reads and sweeps still serve.
	for _, rd := range []string{"/v1/sessions", "/v1/sessions/s1", "/v1/sessions/s1/rules", "/v1/sessions/s1/matches", "/v1/sessions/s1/stats"} {
		if code := doJSON(t, "GET", ts.URL+rd, nil, nil); code != http.StatusOK {
			t.Fatalf("GET %s on replica: status %d", rd, code)
		}
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/s1/sweep", SweepRequest{Rule: 0, Pred: 0, Steps: 3}, nil); code != http.StatusOK {
		t.Fatalf("sweep on replica: status %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/s1/run", nil, nil); code != http.StatusOK {
		t.Fatalf("run on replica: status %d", code)
	}
}
