package server

import (
	"context"
	"errors"
	"net/http"

	"rulematch/internal/sessionstore"
	"rulematch/internal/wal"
)

// Machine-readable error codes. Every non-2xx JSON response carries
// exactly one of these in its envelope; clients branch on the code,
// never on the human-readable message. The table is append-only —
// renaming or removing a code is a breaking API change.
const (
	// CodeInvalidRequest: the request is malformed or semantically
	// invalid (bad JSON, missing fields, unknown op, bad threshold).
	CodeInvalidRequest = "invalid_request"
	// CodeNotFound: no session (or other resource) under that name.
	CodeNotFound = "not_found"
	// CodeConflict: a session with that name already exists.
	CodeConflict = "conflict"
	// CodeQuotaExceeded: an admission or edit quota rejected the
	// request (session count, memory budget, per-session or per-tenant
	// edit quota). Retry after deleting sessions or waiting.
	CodeQuotaExceeded = "quota_exceeded"
	// CodeNotPrimary: the write was sent to a read replica. The
	// envelope's primary field names the primary's base URL; resend
	// there.
	CodeNotPrimary = "not_primary"
	// CodeNotDurable: the operation needs a durable session (snapshot +
	// journal on disk) and this one has none.
	CodeNotDurable = "not_durable"
	// CodeWalRotated: the requested WAL range was compacted into the
	// snapshot. Re-bootstrap from the snapshot instead of replaying.
	CodeWalRotated = "wal_rotated"
	// CodeCancelled: the client disconnected or timed out mid-work; the
	// session is unchanged.
	CodeCancelled = "cancelled"
	// CodeInternal: the server's problem, not the client's.
	CodeInternal = "internal"
	// CodeUnavailable: the server is draining for shutdown, or a
	// consistent read's barrier timed out before the replica caught up.
	// Honor the Retry-After header.
	CodeUnavailable = "unavailable"
	// CodeStaleEpoch: the write was refused by fencing — a newer
	// replication epoch exists (this node was deposed as primary, or
	// the request itself proved a newer epoch via Em-Epoch). The write
	// must go to the current primary; this node will never accept it.
	CodeStaleEpoch = "stale_epoch"
	// CodeUnauthorized: the admin endpoint requires the bearer token
	// the server was started with.
	CodeUnauthorized = "unauthorized"
)

// ErrorBody is the envelope payload of every non-2xx JSON response.
type ErrorBody struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is human-readable detail. Not stable; do not parse.
	Message string `json:"message"`
	// Primary is set only with code not_primary: the base URL of the
	// node that accepts writes.
	Primary string `json:"primary,omitempty"`
}

// ErrorResponse is the body of every non-2xx JSON response:
// {"error":{"code":"...","message":"..."}}.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// retryAfterSeconds is the hint sent with every 429/503 envelope. The
// conditions behind those statuses (quota pressure, a drain in
// progress, a replica catching up) clear on the order of seconds, not
// milliseconds, so a single coarse value serves every case.
const retryAfterSeconds = "1"

func writeErr(w http.ResponseWriter, status int, code string, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{Code: code, Message: err.Error()}})
}

// writeStoreErr folds a sessionstore acquisition/admission error into
// the envelope. Quota rejections are 429 (the client can retry after
// deleting sessions or waiting); read-only rejections are 421 with the
// primary's URL (the write belongs there); anything else unrecognized
// is a reload failure, which is the server's problem, not the client's.
func (s *Server) writeStoreErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, sessionstore.ErrNotFound):
		writeErr(w, http.StatusNotFound, CodeNotFound, err)
	case errors.Is(err, sessionstore.ErrExists):
		writeErr(w, http.StatusConflict, CodeConflict, err)
	case errors.Is(err, sessionstore.ErrBadName):
		writeErr(w, http.StatusBadRequest, CodeInvalidRequest, err)
	case sessionstore.IsQuota(err):
		writeErr(w, http.StatusTooManyRequests, CodeQuotaExceeded, err)
	case sessionstore.IsReadOnly(err):
		s.writeNotPrimary(w)
	default:
		writeErr(w, http.StatusInternalServerError, CodeInternal, err)
	}
}

// writeNotPrimary rejects a write sent to a replica: 421 Misdirected
// Request with the primary's base URL in the envelope.
func (s *Server) writeNotPrimary(w http.ResponseWriter) {
	writeJSON(w, http.StatusMisdirectedRequest, ErrorResponse{Error: ErrorBody{
		Code:    CodeNotPrimary,
		Message: "this node is a read replica; send writes to the primary",
		Primary: s.PrimaryURL(),
	}})
}

// writeOpErr folds an operation error: cancelled contexts become 503
// (client closed request or timed out; Go's net/http has no 499),
// anything else is a validation failure.
func writeOpErr(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		writeErr(w, http.StatusServiceUnavailable, CodeCancelled, err)
		return
	}
	writeErr(w, http.StatusBadRequest, CodeInvalidRequest, err)
}

// writeWalErr folds a replication-read error: a rotated range is 410
// Gone with wal_rotated (the follower re-bootstraps from the
// snapshot), a non-durable session 409 not_durable.
func writeWalErr(w http.ResponseWriter, err error) {
	if errors.Is(err, wal.ErrRotated) {
		writeErr(w, http.StatusGone, CodeWalRotated, err)
		return
	}
	writeErr(w, http.StatusConflict, CodeNotDurable, err)
}
