package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"rulematch/internal/faultio"
	"rulematch/internal/incremental"
	"rulematch/internal/persist"
	"rulematch/internal/sim"
	"rulematch/internal/table"
)

// Store file names inside a session directory.
const (
	SnapshotFile = "snapshot.em"
	JournalFile  = "journal.wal"
	TableAFile   = "tableA.csv"
	TableBFile   = "tableB.csv"
)

// DefaultCompactBytes is the journal size beyond which RecordEdit
// compacts (snapshot + journal rotation).
const DefaultCompactBytes = 1 << 20

// Store is the durable home of one debugging session: a directory
// holding the input tables, the latest checksummed snapshot and the
// edit journal. All writes go through a faultio.FS so tests can
// inject crashes at any filesystem operation.
//
// Crash-consistency protocol:
//
//   - Every committed edit is appended (and synced, per policy) to the
//     journal before it is acknowledged.
//   - Compaction first publishes a new snapshot atomically
//     (temp+fsync+rename, carrying the covered sequence number), then
//     rotates the journal the same way. A crash between the two steps
//     leaves a new snapshot plus a stale journal; recovery skips every
//     record the snapshot already covers, so nothing is replayed twice.
//   - Recovery = load snapshot (v1 or v2), read the journal, truncate
//     its torn tail, replay the records after the snapshot's sequence.
type Store struct {
	fsys      faultio.FS
	dir       string
	policy    SyncPolicy
	CompactAt int64 // journal bytes that trigger compaction; <=0 = DefaultCompactBytes

	w       *Writer
	seq     uint64 // last durably journaled (or snapshotted) sequence
	snapSeq uint64 // sequence covered by the current snapshot
	epoch   uint64 // replication epoch stamped on new records/snapshots
	fenced  bool   // a newer epoch exists elsewhere; refuse writes
}

// ErrFenced reports that the store refuses writes because a newer
// replication epoch exists: this node was deposed as primary and a
// promoted replica owns the session's history now. Fencing is
// permanent for the store's lifetime — a fenced node must re-join as
// a replica, never append.
var ErrFenced = errors.New("wal: store is fenced (a newer epoch exists)")

func (st *Store) path(name string) string { return filepath.Join(st.dir, name) }

// Seq returns the sequence number of the last committed edit.
func (st *Store) Seq() uint64 { return st.seq }

// Epoch returns the replication epoch new records are stamped with.
func (st *Store) Epoch() uint64 { return st.epoch }

// SetEpoch raises the epoch stamped on subsequent records and
// snapshots. Lowering the epoch is refused — history never moves
// backward.
func (st *Store) SetEpoch(e uint64) {
	if e > st.epoch {
		st.epoch = e
	}
}

// Fence permanently refuses further writes: RecordEdit returns
// ErrFenced. Called when the node learns (via a request stamped with
// a higher epoch) that it was deposed.
func (st *Store) Fence() { st.fenced = true }

// Fenced reports whether the store refuses writes.
func (st *Store) Fenced() bool { return st.fenced }

// Dir returns the session directory.
func (st *Store) Dir() string { return st.dir }

// JournalSize returns the journal's current size in bytes.
func (st *Store) JournalSize() int64 {
	if st.w == nil {
		return 0
	}
	return st.w.Size()
}

// Create initializes a session directory: tables, an initial snapshot
// of the materialized session (seq 0) and an empty journal. The
// directory must not already contain a snapshot.
func Create(fsys faultio.FS, dir string, policy SyncPolicy, sess *incremental.Session, a, b *table.Table) (*Store, error) {
	st := &Store{fsys: fsys, dir: dir, policy: policy}
	if _, err := os.Stat(st.path(SnapshotFile)); err == nil {
		return nil, fmt.Errorf("wal: session directory %s already holds a snapshot", dir)
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create session directory: %w", err)
	}
	if err := st.writeTable(TableAFile, a); err != nil {
		return nil, err
	}
	if err := st.writeTable(TableBFile, b); err != nil {
		return nil, err
	}
	if err := persist.SaveFileFS(fsys, st.path(SnapshotFile), sess, persist.WithSeq(0)); err != nil {
		return nil, err
	}
	w, err := OpenWriter(fsys, st.path(JournalFile), policy)
	if err != nil {
		return nil, err
	}
	st.w = w
	return st, nil
}

// CreateAt initializes a session directory at a given recovery point:
// the promotion path, where a replica that has applied WAL sequence
// seq becomes the primary of a new epoch. Unlike Create, the base
// tables arrive as raw CSV bytes (the exact bytes the follower
// bootstrapped from — the snapshot's base lengths refer to them, so
// rewriting the session's grown tables instead would corrupt
// recovery), the snapshot is stamped with seq and epoch, and the
// fresh journal starts appending at seq+1 under the new epoch. Any
// previous contents of dir are removed: a promoted history replaces
// whatever a past life left there.
func CreateAt(fsys faultio.FS, dir string, policy SyncPolicy, sess *incremental.Session, aCSV, bCSV []byte, seq, epoch uint64) (*Store, error) {
	st := &Store{fsys: fsys, dir: dir, policy: policy, seq: seq, snapSeq: seq, epoch: epoch}
	if err := fsys.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("wal: clear session directory: %w", err)
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create session directory: %w", err)
	}
	if err := st.writeTableBytes(TableAFile, aCSV); err != nil {
		return nil, err
	}
	if err := st.writeTableBytes(TableBFile, bCSV); err != nil {
		return nil, err
	}
	opts := []persist.SaveOption{persist.WithSeq(seq), persist.WithEpoch(epoch)}
	if policy.Mode == SyncNever {
		opts = append(opts, persist.NoFsync())
	}
	if err := persist.SaveFileFS(fsys, st.path(SnapshotFile), sess, opts...); err != nil {
		return nil, err
	}
	w, err := OpenWriter(fsys, st.path(JournalFile), policy)
	if err != nil {
		return nil, err
	}
	st.w = w
	return st, nil
}

// writeTableBytes persists one input table from raw CSV bytes.
func (st *Store) writeTableBytes(name string, csv []byte) error {
	f, err := st.fsys.OpenFile(st.path(name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", name, err)
	}
	if _, err := f.Write(csv); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: write %s: %w", name, err)
	}
	if st.policy.Mode != SyncNever {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: sync %s: %w", name, err)
		}
	}
	return f.Close()
}

// writeTable persists one input table as CSV through the store's FS.
func (st *Store) writeTable(name string, t *table.Table) error {
	f, err := st.fsys.OpenFile(st.path(name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", name, err)
	}
	if err := t.WriteCSV(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: write %s: %w", name, err)
	}
	if st.policy.Mode != SyncNever {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return fmt.Errorf("wal: sync %s: %w", name, err)
		}
	}
	return f.Close()
}

// Recovered reports what Open reconstructed.
type Recovered struct {
	Session  *incremental.Session
	A, B     *table.Table
	Replayed int  // journal records applied on top of the snapshot
	Torn     bool // whether a torn journal tail was truncated
}

// Open recovers a session from its directory: reload the tables, load
// the last good snapshot, replay the journal suffix (truncating a
// torn tail), and reopen the journal for appending.
func Open(fsys faultio.FS, dir string, policy SyncPolicy, lib *sim.Library) (*Store, *Recovered, error) {
	st := &Store{fsys: fsys, dir: dir, policy: policy}
	// Table names are not stored in the CSV, so recover them from the
	// snapshot header; persist.LoadFileInfo then verifies consistency.
	nameA, nameB, err := persist.ReadNames(st.path(SnapshotFile))
	if err != nil {
		return nil, nil, fmt.Errorf("wal: recover snapshot: %w", err)
	}
	a, err := table.ReadCSVFile(st.path(TableAFile), nameA)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: recover tables: %w", err)
	}
	b, err := table.ReadCSVFile(st.path(TableBFile), nameB)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: recover tables: %w", err)
	}
	sess, info, err := persist.LoadFileInfo(st.path(SnapshotFile), lib, a, b)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: recover snapshot: %w", err)
	}
	log, err := ReadLog(st.path(JournalFile))
	if err != nil {
		return nil, nil, err
	}
	if err := RepairFile(fsys, st.path(JournalFile), log); err != nil {
		return nil, nil, err
	}
	seq, err := Replay(sess, log.Records, info.Seq)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: replay journal: %w", err)
	}
	st.seq = seq
	st.snapSeq = info.Seq
	// The epoch is the highest seen anywhere in the recovery point: the
	// snapshot's stamp, or a journal record appended after a promotion
	// raised it (SetEpoch does not rewrite the snapshot).
	st.epoch = info.Epoch
	for _, rec := range log.Records {
		if rec.Epoch > st.epoch {
			st.epoch = rec.Epoch
		}
	}
	w, err := OpenWriter(fsys, st.path(JournalFile), policy)
	if err != nil {
		return nil, nil, err
	}
	st.w = w
	replayed := 0
	for _, rec := range log.Records {
		if rec.Seq > info.Seq {
			replayed++
		}
	}
	// Return the session's tables, not the CSV reloads: the snapshot
	// may carry appended records past the CSV base (extras), and replay
	// of record_append ops can grow them further.
	return st, &Recovered{Session: sess, A: sess.M.C.A, B: sess.M.C.B, Replayed: replayed, Torn: log.Torn}, nil
}

// RecordEdit journals one committed edit (assigning it the next
// sequence number) and compacts if the journal has outgrown the
// threshold. The edit must already be applied to sess; on a nil
// return it is as durable as the sync policy promises.
func (st *Store) RecordEdit(sess *incremental.Session, rec Record) error {
	if st.w == nil {
		return errors.New("wal: store is closed")
	}
	if st.fenced {
		return ErrFenced
	}
	rec.Seq = st.seq + 1
	rec.Epoch = st.epoch
	if err := st.w.Append(rec); err != nil {
		return err
	}
	st.seq = rec.Seq
	limit := st.CompactAt
	if limit <= 0 {
		limit = DefaultCompactBytes
	}
	if st.w.Size() > limit {
		if err := st.Compact(sess); err != nil {
			return fmt.Errorf("wal: compact: %w", err)
		}
	}
	return nil
}

// Compact folds the journal into a fresh snapshot and rotates the
// journal. Both steps are individually atomic; see the Store comment
// for why a crash between them is safe.
func (st *Store) Compact(sess *incremental.Session) error {
	opts := []persist.SaveOption{persist.WithSeq(st.seq), persist.WithEpoch(st.epoch)}
	if st.policy.Mode == SyncNever {
		opts = append(opts, persist.NoFsync())
	}
	if err := persist.SaveFileFS(st.fsys, st.path(SnapshotFile), sess, opts...); err != nil {
		return err
	}
	st.snapSeq = st.seq
	return st.rotateJournal()
}

// CompactRewrite is Compact for a physically compacted session (see
// persist.Compact): it additionally rewrites the table CSVs to the
// compacted records, physically dropping tombstones from disk. The
// crash-consistency argument needs one extra step beyond Compact's:
//
//  1. The snapshot is published atomically first. A compacted session
//     reports base lengths of zero, so its snapshot is fully
//     self-contained — recovery never reads record *contents* from the
//     CSVs — and a crash right after this step recovers correctly
//     against the stale, uncompacted tables still on disk.
//  2. Each table CSV is then rewritten atomically (temp + rename), so
//     no crash point ever exposes a torn CSV.
//  3. The journal rotates last, exactly as in Compact.
//
// sess must be the compacted twin of the session this store journals
// (same seq coverage); a and b are its compacted tables.
func (st *Store) CompactRewrite(sess *incremental.Session, a, b *table.Table) error {
	opts := []persist.SaveOption{persist.WithSeq(st.seq), persist.WithEpoch(st.epoch)}
	if st.policy.Mode == SyncNever {
		opts = append(opts, persist.NoFsync())
	}
	if err := persist.SaveFileFS(st.fsys, st.path(SnapshotFile), sess, opts...); err != nil {
		return err
	}
	st.snapSeq = st.seq
	if err := st.writeTableAtomic(TableAFile, a); err != nil {
		return err
	}
	if err := st.writeTableAtomic(TableBFile, b); err != nil {
		return err
	}
	return st.rotateJournal()
}

// writeTableAtomic rewrites one table CSV via temp + fsync + rename +
// dir-fsync, so a crash leaves either the old or the new file.
func (st *Store) writeTableAtomic(name string, t *table.Table) error {
	tmp := st.path(name + ".tmp")
	f, err := st.fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rewrite %s: %w", name, err)
	}
	cleanup := func(err error) error {
		_ = st.fsys.Remove(tmp)
		return fmt.Errorf("wal: rewrite %s: %w", name, err)
	}
	if err := t.WriteCSV(f); err != nil {
		_ = f.Close()
		return cleanup(err)
	}
	if st.policy.Mode != SyncNever {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return cleanup(err)
		}
	}
	if err := f.Close(); err != nil {
		return cleanup(err)
	}
	if err := st.fsys.Rename(tmp, st.path(name)); err != nil {
		return cleanup(err)
	}
	if st.policy.Mode != SyncNever {
		if err := st.fsys.SyncDir(st.dir); err != nil {
			return fmt.Errorf("wal: rewrite %s: %w", name, err)
		}
	}
	return nil
}

// rotateJournal swaps in a fresh header-only journal: build it beside
// the live one, then atomically rename it over.
func (st *Store) rotateJournal() error {
	tmp := st.path(JournalFile + ".new")
	f, err := st.fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate journal: %w", err)
	}
	if _, err := f.Write([]byte(Magic)); err != nil {
		_ = f.Close()
		_ = st.fsys.Remove(tmp)
		return fmt.Errorf("wal: rotate journal: %w", err)
	}
	if st.policy.Mode != SyncNever {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			_ = st.fsys.Remove(tmp)
			return fmt.Errorf("wal: rotate journal: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		_ = st.fsys.Remove(tmp)
		return fmt.Errorf("wal: rotate journal: %w", err)
	}
	_ = st.w.Close()
	st.w = nil
	if err := st.fsys.Rename(tmp, st.path(JournalFile)); err != nil {
		return fmt.Errorf("wal: rotate journal: %w", err)
	}
	if st.policy.Mode != SyncNever {
		if err := st.fsys.SyncDir(st.dir); err != nil {
			return fmt.Errorf("wal: rotate journal: %w", err)
		}
	}
	w, err := OpenWriter(st.fsys, st.path(JournalFile), st.policy)
	if err != nil {
		return err
	}
	st.w = w
	return nil
}

// Close syncs and closes the journal.
func (st *Store) Close() error {
	if st.w == nil {
		return nil
	}
	err := st.w.Close()
	st.w = nil
	return err
}

// Destroy removes the session directory and everything in it.
func (st *Store) Destroy() error {
	_ = st.Close()
	return st.fsys.RemoveAll(st.dir)
}
