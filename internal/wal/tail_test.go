package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"rulematch/internal/faultio"
)

// appendRecords writes records seq start..start+n-1 through a Writer.
func appendRecords(t *testing.T, path string, start uint64, n int) {
	t.Helper()
	w, err := OpenWriter(faultio.OS, path, SyncPolicy{Mode: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(Record{Seq: start + uint64(i), Op: "set_threshold", Rule: 1, Threshold: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTailFollowsAppends proves Poll returns exactly the appended
// suffix across several append/poll rounds, never re-reading old
// frames.
func TestTailFollowsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	tl, err := NewTail(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing on disk yet.
	if recs, err := tl.Poll(); err != nil || len(recs) != 0 {
		t.Fatalf("poll on missing journal: %v, %d records", err, len(recs))
	}
	appendRecords(t, path, 1, 3)
	recs, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Seq != 1 || recs[2].Seq != 3 {
		t.Fatalf("first poll got %d records, want seqs 1..3", len(recs))
	}
	// Idle poll sees nothing.
	if recs, err := tl.Poll(); err != nil || len(recs) != 0 {
		t.Fatalf("idle poll: %v, %d records", err, len(recs))
	}
	appendRecords(t, path, 4, 2)
	recs, err = tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 4 || recs[1].Seq != 5 {
		t.Fatalf("second poll got %d records, want seqs 4..5", len(recs))
	}
	if tl.Next() != 6 {
		t.Fatalf("next = %d, want 6", tl.Next())
	}
}

// TestTailSkipsCoveredRecords proves a tail opened mid-history skips
// the records its snapshot already covers.
func TestTailSkipsCoveredRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	appendRecords(t, path, 1, 5)
	tl, err := NewTail(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 4 {
		t.Fatalf("got %d records starting at %d, want 2 starting at 4", len(recs), recs[0].Seq)
	}
}

// TestTailTornFrame proves a half-written frame is not an error: Poll
// stops before it and resumes once the frame completes.
func TestTailTornFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	appendRecords(t, path, 1, 2)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeFrame(Record{Seq: 3, Op: "relax", Rule: 0, Threshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	// Write all but the last 3 bytes of the next frame.
	if err := os.WriteFile(path, append(append([]byte{}, whole...), frame[:len(frame)-3]...), 0o644); err != nil {
		t.Fatal(err)
	}
	tl, err := NewTail(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("poll over torn tail got %d records, want 2", len(recs))
	}
	// Complete the frame; the tail picks up record 3 alone.
	if err := os.WriteFile(path, append(whole, frame...), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err = tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("poll after completion got %d records, want seq 3", len(recs))
	}
}

// TestTailRotationDetected proves a shrunken journal (rotation) and a
// sequence gap both surface as ErrRotated.
func TestTailRotationDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	appendRecords(t, path, 1, 4)
	tl, err := NewTail(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Poll(); err != nil {
		t.Fatal(err)
	}
	// Rotate: the journal is rewritten as header-only.
	if err := os.WriteFile(path, []byte(Magic), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Poll(); !errors.Is(err, ErrRotated) {
		t.Fatalf("poll after rotation: %v, want ErrRotated", err)
	}

	// A gap in sequence numbers is rotation too.
	gapPath := filepath.Join(t.TempDir(), "journal.wal")
	appendRecords(t, gapPath, 5, 2) // journal starts at seq 5
	gt, err := NewTail(gapPath, 1)  // cursor expects seq 2 next
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gt.Poll(); !errors.Is(err, ErrRotated) {
		t.Fatalf("poll over gap: %v, want ErrRotated", err)
	}
}

// TestEncodeFrameMatchesWriter proves EncodeFrame produces exactly the
// bytes Writer.Append puts in the journal, so re-framed replication
// streams parse with the same reader as the journal itself.
func TestEncodeFrameMatchesWriter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	rec := Record{Seq: 1, Op: "add_rule", Src: "rule r9: jaccard(name, name) >= 0.5"}
	appendRecordsOne(t, path, rec)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeFrame(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data[len(Magic):], frame) {
		t.Fatal("EncodeFrame bytes differ from Writer.Append bytes")
	}
	// And the framed stream parses with the standard log reader.
	log, err := ReadLogFrom(bytes.NewReader(append([]byte(Magic), frame...)))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != 1 || log.Records[0].Op != "add_rule" {
		t.Fatalf("re-framed stream parsed to %+v", log.Records)
	}
}

func appendRecordsOne(t *testing.T, path string, rec Record) {
	t.Helper()
	w, err := OpenWriter(faultio.OS, path, SyncPolicy{Mode: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
