package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rulematch/internal/core"
	"rulematch/internal/faultio"
	"rulematch/internal/incremental"
	"rulematch/internal/rule"
	"rulematch/internal/sim"
	"rulematch/internal/table"
)

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Seq: uint64(i + 1), Op: "set_threshold", Rule: i % 3, Pred: i % 2,
			Threshold: 0.5 + float64(i)/100,
		}
	}
	return recs
}

func writeJournal(t *testing.T, path string, recs []Record) {
	t.Helper()
	w, err := OpenWriter(faultio.OS, path, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	recs := testRecords(10)
	recs[3] = Record{Seq: 4, Op: "add_rule", Src: "rule rx: jaccard(name, name) >= 0.3"}
	writeJournal(t, path, recs)
	log, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Torn {
		t.Fatal("clean journal reported torn")
	}
	if len(log.Records) != len(recs) {
		t.Fatalf("read %d records, want %d", len(log.Records), len(recs))
	}
	for i := range recs {
		if fmt.Sprintf("%+v", log.Records[i]) != fmt.Sprintf("%+v", recs[i]) {
			t.Fatalf("record %d: %+v != %+v", i, log.Records[i], recs[i])
		}
	}
	if log.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d", log.LastSeq())
	}
	fi, _ := os.Stat(path)
	if log.GoodSize != fi.Size() {
		t.Fatalf("GoodSize %d != file size %d", log.GoodSize, fi.Size())
	}
}

func TestMissingJournalIsEmpty(t *testing.T) {
	log, err := ReadLog(filepath.Join(t.TempDir(), "nope.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if log.Torn || len(log.Records) != 0 || log.GoodSize != 0 {
		t.Fatalf("missing journal: %+v", log)
	}
}

// TestTornTailAtEveryOffset truncates a valid journal at every byte
// offset: the parse must always return a clean record prefix, and a
// repair + re-append must produce a valid journal again.
func TestTornTailAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	recs := testRecords(5)
	writeJournal(t, full, recs)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries for prefix-count verification.
	wantAt := func(size int64) int {
		n := 0
		off := int64(len(Magic))
		for _, rec := range recs {
			frame := recordFrameSize(t, rec)
			if off+frame <= size {
				n++
				off += frame
			} else {
				break
			}
		}
		return n
	}
	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		log, err := ReadLog(path)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if want := wantAt(int64(cut)); len(log.Records) != want {
			t.Fatalf("cut=%d: %d records survive, want %d", cut, len(log.Records), want)
		}
		if cut < len(data) && !log.Torn && int64(cut) != log.GoodSize {
			t.Fatalf("cut=%d: not reported torn (GoodSize %d)", cut, log.GoodSize)
		}
		// Repair, then append one more record: the journal must read
		// back as the surviving prefix plus the new record.
		if err := RepairFile(faultio.OS, path, log); err != nil {
			t.Fatalf("cut=%d: repair: %v", cut, err)
		}
		w, err := OpenWriter(faultio.OS, path, SyncPolicy{Mode: SyncNever})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		next := Record{Seq: log.LastSeq() + 1, Op: "remove_rule", Rule: 1}
		if err := w.Append(next); err != nil {
			t.Fatalf("cut=%d: append after repair: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		relog, err := ReadLog(path)
		if err != nil || relog.Torn {
			t.Fatalf("cut=%d: reread after repair: torn=%v err=%v", cut, relog.Torn, err)
		}
		if len(relog.Records) != len(log.Records)+1 {
			t.Fatalf("cut=%d: %d records after repair+append, want %d", cut, len(relog.Records), len(log.Records)+1)
		}
	}
}

// TestBitFlipStopsAtCorruptRecord flips one bit in each record region
// and asserts the surviving prefix is exactly the records before it.
func TestBitFlipStopsAtCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	recs := testRecords(5)
	writeJournal(t, full, recs)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(len(Magic))
	for i, rec := range recs {
		frame := recordFrameSize(t, rec)
		mid := off + frame/2
		mut := append([]byte(nil), data...)
		mut[mid] ^= 0x40
		path := filepath.Join(dir, "flip.wal")
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		log, err := ReadLog(path)
		if err != nil {
			t.Fatal(err)
		}
		if !log.Torn {
			t.Fatalf("flip in record %d not detected", i)
		}
		if len(log.Records) != i {
			t.Fatalf("flip in record %d: %d records survive, want %d", i, len(log.Records), i)
		}
		off += frame
	}
}

func TestMagicTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	if err := os.WriteFile(path, []byte(Magic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if !log.Torn || log.GoodSize != 0 || len(log.Records) != 0 {
		t.Fatalf("torn header: %+v", log)
	}
	if err := RepairFile(faultio.OS, path, log); err != nil {
		t.Fatal(err)
	}
	// A repaired empty file gets a fresh header on open.
	w, err := OpenWriter(faultio.OS, path, SyncPolicy{Mode: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Seq: 1, Op: "remove_rule"}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	relog, err := ReadLog(path)
	if err != nil || relog.Torn || len(relog.Records) != 1 {
		t.Fatalf("after header repair: torn=%v n=%d err=%v", relog.Torn, len(relog.Records), err)
	}
}

func TestNonMonotonicSeqIsTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	writeJournal(t, path, []Record{
		{Seq: 1, Op: "remove_rule"},
		{Seq: 2, Op: "remove_rule"},
		{Seq: 2, Op: "remove_rule"}, // repeat
	})
	log, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if !log.Torn || len(log.Records) != 2 {
		t.Fatalf("seq repeat: torn=%v n=%d", log.Torn, len(log.Records))
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{in: "always", want: SyncPolicy{Mode: SyncAlways}},
		{in: "never", want: SyncPolicy{Mode: SyncNever}},
		{in: "100ms", want: SyncPolicy{Mode: SyncInterval, Interval: 100 * time.Millisecond}},
		{in: "bogus", err: true},
		{in: "-5s", err: true},
		{in: "", err: true},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if c.err != (err != nil) {
			t.Errorf("%q: err = %v", c.in, err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("%q: %+v != %+v", c.in, got, c.want)
		}
	}
	if s := (SyncPolicy{Mode: SyncAlways}).String(); s != "always" {
		t.Errorf("String always = %q", s)
	}
	if s := (SyncPolicy{Mode: SyncInterval, Interval: time.Second}).String(); s != "1s" {
		t.Errorf("String interval = %q", s)
	}
}

// recordFrameSize computes a record's on-disk frame size.
func recordFrameSize(t *testing.T, rec Record) int64 {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "one.wal")
	writeJournal(t, path, []Record{rec})
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size() - int64(len(Magic))
}

func TestReadLogFrom(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	writeJournal(t, path, testRecords(3))
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := ReadLogFrom(f)
	if err != nil || log.Torn || len(log.Records) != 3 {
		t.Fatalf("ReadLogFrom: torn=%v n=%d err=%v", log.Torn, len(log.Records), err)
	}
}

// --- replay tests ---

// buildSessionT mirrors the persist tests' small two-table session.
func buildSessionT(t *testing.T) (*incremental.Session, *table.Table, *table.Table) {
	t.Helper()
	a := table.MustNew("A", []string{"name", "city"})
	b := table.MustNew("B", []string{"name", "city"})
	rowsA := [][]string{
		{"matthew richardson", "seattle"}, {"john smith", "madison"},
		{"maria garcia", "chicago"}, {"wei chen", "milwaukee"},
	}
	rowsB := [][]string{
		{"matt richardson", "seattle"}, {"jon smith", "madison"},
		{"mary garcia", "chicago"}, {"alexandra cooper", "new york"},
	}
	for i, r := range rowsA {
		a.Append(fmt.Sprintf("a%d", i), r...)
	}
	for i, r := range rowsB {
		b.Append(fmt.Sprintf("b%d", i), r...)
	}
	var pairs []table.Pair
	for i := range rowsA {
		for j := range rowsB {
			pairs = append(pairs, table.Pair{A: int32(i), B: int32(j)})
		}
	}
	f, err := rule.ParseFunction(`
rule r1: jaro_winkler(name, name) >= 0.9 and exact_match(city, city) >= 1
rule r2: trigram(name, name) >= 0.75
`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(f, sim.Standard(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	s := incremental.NewSession(c, pairs)
	s.RunFull()
	return s, a, b
}

func TestApplyMirrorsDirectOps(t *testing.T) {
	s1, _, _ := buildSessionT(t)
	s2, _, _ := buildSessionT(t)

	recs := []Record{
		{Seq: 1, Op: "add_predicate", Rule: 1, Src: "jaccard(city, city) >= 0.2"},
		{Seq: 2, Op: "tighten", Rule: 0, Pred: 0, Threshold: 0.92},
		{Seq: 3, Op: "relax", Rule: 1, Pred: 0, Threshold: 0.7},
		{Seq: 4, Op: "set_threshold", Rule: 1, Pred: 1, Threshold: 0.25},
		{Seq: 5, Op: "add_rule", Src: "rule r3: soundex(name, name) >= 0.5"},
		{Seq: 6, Op: "remove_predicate", Rule: 1, Pred: 1},
		{Seq: 7, Op: "remove_rule", Rule: 0},
	}
	// Direct calls on s1.
	p, _ := rule.ParsePredicate("jaccard(city, city) >= 0.2")
	if err := s1.AddPredicate(1, p); err != nil {
		t.Fatal(err)
	}
	if err := s1.TightenPredicate(0, 0, 0.92); err != nil {
		t.Fatal(err)
	}
	if err := s1.RelaxPredicate(1, 0, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := s1.SetThreshold(1, 1, 0.25); err != nil {
		t.Fatal(err)
	}
	r3, _ := rule.ParseRule("r3: soundex(name, name) >= 0.5")
	if err := s1.AddRule(r3); err != nil {
		t.Fatal(err)
	}
	if err := s1.RemovePredicate(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s1.RemoveRule(0); err != nil {
		t.Fatal(err)
	}
	// Replay on s2.
	seq, err := Replay(s2, recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 {
		t.Fatalf("replayed to seq %d", seq)
	}
	if !s2.St.Equal(s1.St) {
		t.Fatal("replayed state differs from direct operations")
	}
	if err := s2.VerifyDeep(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRejectsUnknownOp(t *testing.T) {
	s, _, _ := buildSessionT(t)
	if err := Apply(s, Record{Seq: 1, Op: "frobnicate"}); err == nil {
		t.Fatal("unknown op applied")
	}
	if err := Apply(s, Record{Seq: 1, Op: "add_predicate", Rule: 0, Src: "not a predicate"}); err == nil {
		t.Fatal("garbage predicate applied")
	}
}

func TestReplaySkipsSnapshotCoveredRecords(t *testing.T) {
	s1, _, _ := buildSessionT(t)
	s2, _, _ := buildSessionT(t)
	recs := []Record{
		{Seq: 1, Op: "set_threshold", Rule: 1, Pred: 0, Threshold: 0.6},
		{Seq: 2, Op: "set_threshold", Rule: 1, Pred: 0, Threshold: 0.8},
	}
	// s1 already has record 1 folded in (as a snapshot would).
	if err := s1.SetThreshold(1, 0, 0.6); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(s1, recs, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(s2, recs, 0); err != nil {
		t.Fatal(err)
	}
	if !s1.St.Equal(s2.St) {
		t.Fatal("afterSeq replay diverged from full replay")
	}
}
