package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrRotated reports that a journal no longer holds the records a
// cursor asks for: compaction folded them into a snapshot and rotated
// the file. A follower seeing this must re-bootstrap from the latest
// snapshot instead of retrying the cursor.
var ErrRotated = errors.New("wal: journal rotated past cursor")

// EncodeFrame frames one record exactly as Writer.Append writes it:
// uint32 LE payload length, uint32 LE CRC-32C, JSON payload. The
// replication endpoint re-frames journal records with this, so the
// bytes a follower parses are the same format the journal stores.
func EncodeFrame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encode record: %w", err)
	}
	if len(payload) > MaxRecordBytes {
		return nil, fmt.Errorf("wal: record %d bytes exceeds the %d-byte limit", len(payload), MaxRecordBytes)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[8:], payload)
	return frame, nil
}

// EncodeFrames frames a batch of records back to back (no magic
// header).
func EncodeFrames(recs []Record) ([]byte, error) {
	var out []byte
	for _, rec := range recs {
		frame, err := EncodeFrame(rec)
		if err != nil {
			return nil, err
		}
		out = append(out, frame...)
	}
	return out, nil
}

// Tail incrementally follows one journal file: each Poll parses only
// the bytes appended since the previous Poll, returning the records in
// sequence order. It is the read side of WAL shipping — the primary's
// replication endpoint opens a Tail at the follower's cursor and
// drains whatever the journal has grown.
//
// A Tail detects two abnormal conditions:
//
//   - ErrRotated: the file shrank (compaction rotated the journal), or
//     the records present skip past the expected next sequence — the
//     cursor's records are gone. The caller must restart from a
//     snapshot.
//   - A torn tail (a frame still being appended) is not an error: Poll
//     stops at the last complete frame and picks the rest up next time.
type Tail struct {
	path string
	off  int64  // byte offset of the first unparsed byte
	next uint64 // next sequence number expected
}

// NewTail opens a tail positioned after sequence afterSeq: the first
// record Poll returns will be afterSeq+1. Returns ErrRotated if the
// journal's surviving records already start past afterSeq+1. A missing
// journal file is an empty tail (Poll finds it once it exists).
func NewTail(path string, afterSeq uint64) (*Tail, error) {
	t := &Tail{path: path, next: afterSeq + 1}
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		return t, nil
	} else if err != nil {
		return nil, fmt.Errorf("wal: stat journal: %w", err)
	}
	t.off = 0
	return t, nil
}

// Next returns the sequence number of the next record Poll will
// deliver.
func (t *Tail) Next() uint64 { return t.next }

// Poll reads the journal's unseen suffix and returns every complete
// record with the expected sequence numbers. An empty slice means
// nothing new yet. Stale records (Seq < next — the journal suffix left
// by a crash between snapshot publish and rotation) are skipped; a gap
// (Seq > next) or a shrunken file returns ErrRotated.
func (t *Tail) Poll() ([]Record, error) {
	f, err := os.Open(t.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: open journal: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("wal: stat journal: %w", err)
	}
	if fi.Size() < t.off {
		return nil, fmt.Errorf("journal %s shrank from %d to %d bytes: %w",
			t.path, t.off, fi.Size(), ErrRotated)
	}
	if fi.Size() == t.off {
		return nil, nil
	}
	if _, err := f.Seek(t.off, io.SeekStart); err != nil {
		return nil, fmt.Errorf("wal: seek journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("wal: read journal: %w", err)
	}
	if t.off == 0 {
		// First read must start with the magic header; anything else is
		// a file we do not understand (or one still being created).
		if len(data) < len(Magic) {
			return nil, nil
		}
		if string(data[:len(Magic)]) != Magic {
			return nil, fmt.Errorf("journal %s has no magic header: %w", t.path, ErrRotated)
		}
		data = data[len(Magic):]
		t.off = int64(len(Magic))
	}
	var out []Record
	for {
		if len(data) < 8 {
			return out, nil // torn or empty tail: wait for the rest
		}
		n := binary.LittleEndian.Uint32(data[0:4])
		sum := binary.LittleEndian.Uint32(data[4:8])
		if n == 0 || n > MaxRecordBytes {
			return out, fmt.Errorf("journal %s: implausible frame length %d at offset %d: %w",
				t.path, n, t.off, ErrRotated)
		}
		if int64(n) > int64(len(data)-8) {
			return out, nil // frame still being appended
		}
		payload := data[8 : 8+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			// Could be a write racing the read; the caller retries and a
			// persistent mismatch resolves as rotation on a later poll.
			return out, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return out, fmt.Errorf("journal %s: bad record at offset %d: %w", t.path, t.off, err)
		}
		data = data[8+n:]
		t.off += int64(8 + n)
		if rec.Seq < t.next {
			continue // already covered by the follower's snapshot
		}
		if rec.Seq > t.next {
			return out, fmt.Errorf("journal %s jumps from seq %d to %d: %w",
				t.path, t.next-1, rec.Seq, ErrRotated)
		}
		out = append(out, rec)
		t.next++
	}
}

// SnapshotSeq returns the sequence number covered by the store's
// current snapshot: every record with Seq <= SnapshotSeq is folded in
// and no longer served from the journal. A follower whose cursor is
// below this must re-bootstrap.
func (st *Store) SnapshotSeq() uint64 { return st.snapSeq }

// FramesAfter returns the framed bytes (no magic header) of every
// journal record with Seq > from, plus the last sequence number
// included (== from when the follower is caught up). Returns
// ErrRotated when compaction has already folded some of those records
// into the snapshot — the follower's cursor predates SnapshotSeq.
//
// Callers must hold at least the session's read lock: the journal is
// only appended or rotated under the write lock, so the file is
// quiescent for the duration.
func (st *Store) FramesAfter(from uint64) ([]byte, uint64, error) {
	if from < st.snapSeq {
		return nil, 0, fmt.Errorf("cursor %d predates snapshot seq %d: %w", from, st.snapSeq, ErrRotated)
	}
	if from >= st.seq {
		return nil, from, nil
	}
	t, err := NewTail(st.path(JournalFile), from)
	if err != nil {
		return nil, 0, err
	}
	recs, err := t.Poll()
	if err != nil {
		return nil, 0, err
	}
	frames, err := EncodeFrames(recs)
	if err != nil {
		return nil, 0, err
	}
	return frames, t.next - 1, nil
}

// TableBytes returns the raw CSV bytes of the session's base tables —
// the files a snapshot's base lengths refer to. Followers bootstrap
// from these plus the snapshot. Callers must hold at least the read
// lock (CompactRewrite replaces the files under the write lock).
func (st *Store) TableBytes() (a, b []byte, err error) {
	a, err = os.ReadFile(st.path(TableAFile))
	if err != nil {
		return nil, nil, fmt.Errorf("wal: read %s: %w", TableAFile, err)
	}
	b, err = os.ReadFile(st.path(TableBFile))
	if err != nil {
		return nil, nil, fmt.Errorf("wal: read %s: %w", TableBFile, err)
	}
	return a, b, nil
}
