package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"rulematch/internal/block"
	"rulematch/internal/core"
	"rulematch/internal/faultio"
	"rulematch/internal/incremental"
	"rulematch/internal/rule"
	"rulematch/internal/sim"
	"rulematch/internal/table"
)

// buildBlockedSessionT mirrors buildSessionT but drives the candidate
// set through a delta blocker, so record_append/record_delete ops can
// be journaled and replayed.
func buildBlockedSessionT(t *testing.T) (*incremental.Session, *table.Table, *table.Table) {
	t.Helper()
	a := table.MustNew("A", []string{"name", "city"})
	b := table.MustNew("B", []string{"name", "city"})
	rowsA := [][]string{
		{"matthew richardson", "seattle"}, {"john smith", "madison"},
		{"maria garcia", "chicago"}, {"wei chen", "milwaukee"},
	}
	rowsB := [][]string{
		{"matt richardson", "seattle"}, {"jon smith", "madison"},
		{"mary garcia", "chicago"}, {"alexandra cooper", "new york"},
	}
	for i, r := range rowsA {
		a.Append(fmt.Sprintf("a%d", i), r...)
	}
	for i, r := range rowsB {
		b.Append(fmt.Sprintf("b%d", i), r...)
	}
	blk := block.AttrEquivalence{Attr: "city"}
	pairs, err := blk.Pairs(a, b)
	if err != nil {
		t.Fatal(err)
	}
	f, err := rule.ParseFunction(`
rule r1: jaro_winkler(name, name) >= 0.9 and exact_match(city, city) >= 1
rule r2: trigram(name, name) >= 0.75
`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(f, sim.Standard(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	s := incremental.NewSession(c, pairs)
	s.Blocker = blk
	s.RunFull()
	return s, a, b
}

// recOpsScript interleaves a rule edit with record appends and deletes.
func recOpsScript() []Record {
	return []Record{
		{Op: "set_threshold", Rule: 1, Pred: 0, Threshold: 0.7},
		{Op: "record_append",
			RecsA: []table.Record{{ID: "a4", Values: []string{"alex cooper", "new york"}}},
			RecsB: []table.Record{
				{ID: "b4", Values: []string{"wei chen", "milwaukee"}},
				{ID: "b5", Values: []string{"matthew richardson", "seattle"}},
			}},
		{Op: "record_delete", DelA: []string{"a1"}, DelB: []string{"b0"}},
		{Op: "record_append",
			RecsB: []table.Record{{ID: "b6", Values: []string{"john smith", "madison"}}}},
	}
}

// TestStoreRecordOpsRoundTrip journals record appends and deletes
// alongside a rule edit, then recovers and demands byte-identical
// state, grown tables, and a still-functional blocker.
func TestStoreRecordOpsRoundTrip(t *testing.T) {
	sess, a, b := buildBlockedSessionT(t)
	dir := filepath.Join(t.TempDir(), "s1")
	st, err := Create(faultio.OS, dir, SyncPolicy{Mode: SyncAlways}, sess, a, b)
	if err != nil {
		t.Fatal(err)
	}
	script := recOpsScript()
	for _, rec := range script {
		if err := Apply(sess, rec); err != nil {
			t.Fatalf("apply %+v: %v", rec, err)
		}
		if err := st.RecordEdit(sess, rec); err != nil {
			t.Fatalf("record %+v: %v", rec, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := Open(faultio.OS, dir, SyncPolicy{Mode: SyncAlways}, sim.Standard())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec.Torn {
		t.Fatal("clean journal reported torn")
	}
	if rec.Replayed != len(script) {
		t.Fatalf("replayed %d records, want %d", rec.Replayed, len(script))
	}
	// The recovered tables carry the appends and tombstones: the CSVs on
	// disk only hold the base records.
	if rec.A.Len() != 5 || rec.B.Len() != 7 {
		t.Fatalf("recovered table lengths %d/%d, want 5/7", rec.A.Len(), rec.B.Len())
	}
	if rec.A.NumDeleted() != 1 || rec.B.NumDeleted() != 1 {
		t.Fatalf("recovered tombstones %d/%d, want 1/1", rec.A.NumDeleted(), rec.B.NumDeleted())
	}
	if !bytes.Equal(saveBytes(t, rec.Session), saveBytes(t, sess)) {
		t.Fatal("recovered session state is not byte-identical to the live one")
	}
	if err := rec.Session.VerifyDeep(); err != nil {
		t.Fatal(err)
	}
	// The blocker came back through the snapshot spec, so the recovered
	// session keeps accepting appends — journaled under the next seq.
	more := Record{Op: "record_append",
		RecsB: []table.Record{{ID: "b7", Values: []string{"maria garcia", "chicago"}}}}
	if err := Apply(rec.Session, more); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := st2.RecordEdit(rec.Session, more); err != nil {
		t.Fatal(err)
	}
	if st2.Seq() != uint64(len(script))+1 {
		t.Fatalf("seq after resumed append %d, want %d", st2.Seq(), len(script)+1)
	}
}

// TestStoreTornRecordAppendRecoversPreAppend kills the journal mid
// record_append frame: recovery must land exactly on the pre-append
// state, and the re-issued append must reconverge with the live run.
func TestStoreTornRecordAppendRecoversPreAppend(t *testing.T) {
	sess, a, b := buildBlockedSessionT(t)
	dir := filepath.Join(t.TempDir(), "s1")
	st, err := Create(faultio.OS, dir, SyncPolicy{Mode: SyncAlways}, sess, a, b)
	if err != nil {
		t.Fatal(err)
	}
	edit := Record{Op: "set_threshold", Rule: 1, Pred: 0, Threshold: 0.7}
	if err := Apply(sess, edit); err != nil {
		t.Fatal(err)
	}
	if err := st.RecordEdit(sess, edit); err != nil {
		t.Fatal(err)
	}
	preBytes := saveBytes(t, sess)
	preMatches := sess.MatchCount()

	appendRec := recOpsScript()[1]
	if err := Apply(sess, appendRec); err != nil {
		t.Fatal(err)
	}
	if err := st.RecordEdit(sess, appendRec); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: cut into the record_append frame's payload.
	jpath := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := Open(faultio.OS, dir, SyncPolicy{Mode: SyncAlways}, sim.Standard())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !rec.Torn {
		t.Fatal("torn record_append not reported")
	}
	if rec.Replayed != 1 {
		t.Fatalf("replayed %d records, want 1 (the edit)", rec.Replayed)
	}
	if rec.A.Len() != 4 || rec.B.Len() != 4 {
		t.Fatalf("tables grew from the torn append: %d/%d", rec.A.Len(), rec.B.Len())
	}
	if got := rec.Session.MatchCount(); got != preMatches {
		t.Fatalf("recovered matches %d, want pre-append %d", got, preMatches)
	}
	if !bytes.Equal(saveBytes(t, rec.Session), preBytes) {
		t.Fatal("recovery after torn append is not byte-identical to the pre-append state")
	}
	// Re-issue the lost append: the store journals it at seq 2 and the
	// state reconverges with the live session that never crashed.
	if err := Apply(rec.Session, appendRec); err != nil {
		t.Fatal(err)
	}
	if err := st2.RecordEdit(rec.Session, appendRec); err != nil {
		t.Fatal(err)
	}
	if st2.Seq() != 2 {
		t.Fatalf("seq after re-append %d, want 2", st2.Seq())
	}
	if !bytes.Equal(saveBytes(t, rec.Session), saveBytes(t, sess)) {
		t.Fatal("re-issued append diverged from the uncrashed run")
	}
}

// TestStoreCompactionAfterRecordOps forces a compaction after every
// record op and checks recovery comes entirely from the snapshot —
// including the appended records, tombstones and blocker spec.
func TestStoreCompactionAfterRecordOps(t *testing.T) {
	sess, a, b := buildBlockedSessionT(t)
	dir := filepath.Join(t.TempDir(), "s1")
	st, err := Create(faultio.OS, dir, SyncPolicy{Mode: SyncAlways}, sess, a, b)
	if err != nil {
		t.Fatal(err)
	}
	st.CompactAt = 1 // compact after every edit
	script := recOpsScript()
	for _, rec := range script {
		if err := Apply(sess, rec); err != nil {
			t.Fatal(err)
		}
		if err := st.RecordEdit(sess, rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.JournalSize(); got != int64(len(Magic)) {
		t.Fatalf("journal size after compaction %d, want %d", got, len(Magic))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := Open(faultio.OS, dir, SyncPolicy{Mode: SyncAlways}, sim.Standard())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec.Replayed != 0 {
		t.Fatalf("compacted store replayed %d records", rec.Replayed)
	}
	if st2.Seq() != uint64(len(script)) {
		t.Fatalf("recovered seq %d, want %d", st2.Seq(), len(script))
	}
	if rec.A.Len() != 5 || rec.B.Len() != 7 {
		t.Fatalf("snapshot-only recovery lost appended records: %d/%d", rec.A.Len(), rec.B.Len())
	}
	if !bytes.Equal(saveBytes(t, rec.Session), saveBytes(t, sess)) {
		t.Fatal("recovered-from-compacted state differs")
	}
	if err := rec.Session.VerifyDeep(); err != nil {
		t.Fatal(err)
	}
}
