package wal

import (
	"fmt"

	"rulematch/internal/incremental"
	"rulematch/internal/rule"
)

// Apply replays one journaled edit against a session. The op names
// and argument conventions mirror the emserve edit API, so a record
// journaled for a committed HTTP edit replays the exact same
// incremental operation.
func Apply(s *incremental.Session, rec Record) error {
	switch rec.Op {
	case "add_predicate":
		p, err := rule.ParsePredicate(rec.Src)
		if err != nil {
			return fmt.Errorf("wal: record %d: parse predicate: %w", rec.Seq, err)
		}
		return s.AddPredicate(rec.Rule, p)
	case "remove_predicate":
		return s.RemovePredicate(rec.Rule, rec.Pred)
	case "tighten":
		return s.TightenPredicate(rec.Rule, rec.Pred, rec.Threshold)
	case "relax":
		return s.RelaxPredicate(rec.Rule, rec.Pred, rec.Threshold)
	case "set_threshold":
		return s.SetThreshold(rec.Rule, rec.Pred, rec.Threshold)
	case "add_rule":
		r, err := rule.ParseRule(rec.Src)
		if err != nil {
			return fmt.Errorf("wal: record %d: parse rule: %w", rec.Seq, err)
		}
		return s.AddRule(r)
	case "remove_rule":
		return s.RemoveRule(rec.Rule)
	case "record_append":
		return s.AddRecords(rec.RecsA, rec.RecsB)
	case "record_delete":
		return s.DeleteRecords(rec.DelA, rec.DelB)
	default:
		return fmt.Errorf("wal: record %d: unknown op %q", rec.Seq, rec.Op)
	}
}

// Replay applies every record with Seq > afterSeq in order and
// returns the sequence number reached. A record that fails to apply
// stops the replay with an error — the journal and snapshot disagree,
// which recovery surfaces rather than papering over.
func Replay(s *incremental.Session, recs []Record, afterSeq uint64) (uint64, error) {
	seq := afterSeq
	for _, rec := range recs {
		if rec.Seq <= afterSeq {
			continue // already folded into the snapshot
		}
		if err := Apply(s, rec); err != nil {
			return seq, err
		}
		seq = rec.Seq
	}
	return seq, nil
}
