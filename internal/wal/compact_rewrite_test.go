package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rulematch/internal/faultio"
	"rulematch/internal/persist"
	"rulematch/internal/sim"
)

// csvLines counts data lines (header excluded) in a table CSV.
func csvLines(t *testing.T, path string) int {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return len(strings.Split(strings.TrimSpace(string(raw)), "\n")) - 1
}

// CompactRewrite is the evict-time compaction: tombstoned records
// vanish from the CSVs, the snapshot becomes self-contained, the
// journal rotates, and reopening the store reproduces the compacted
// session byte for byte.
func TestCompactRewriteDropsTombstonesOnDisk(t *testing.T) {
	sess, a, b := buildSessionT(t)
	dir := filepath.Join(t.TempDir(), "s1")
	st, err := Create(faultio.OS, dir, SyncPolicy{Mode: SyncAlways}, sess, a, b)
	if err != nil {
		t.Fatal(err)
	}
	script := []Record{
		{Op: "set_threshold", Rule: 1, Pred: 0, Threshold: 0.6},
		{Op: "record_delete", DelA: []string{"a1"}, DelB: []string{"b3"}},
	}
	for _, rec := range script {
		if err := Apply(sess, rec); err != nil {
			t.Fatal(err)
		}
		if err := st.RecordEdit(sess, rec); err != nil {
			t.Fatal(err)
		}
	}
	if csvLines(t, filepath.Join(dir, TableAFile)) != 4 {
		t.Fatal("test setup: expected the original 4 records on disk")
	}

	cs, err := persist.Compact(sess, sim.Standard())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CompactRewrite(cs, cs.M.C.A, cs.M.C.B); err != nil {
		t.Fatal(err)
	}
	// Journal rotated away: only the header remains.
	if got := st.JournalSize(); got != int64(len(Magic)) {
		t.Errorf("journal size after rewrite %d, want %d", got, len(Magic))
	}
	// The CSVs shrank to the live records.
	if got := csvLines(t, filepath.Join(dir, TableAFile)); got != 3 {
		t.Errorf("tableA.csv has %d records after rewrite, want 3", got)
	}
	if got := csvLines(t, filepath.Join(dir, TableBFile)); got != 3 {
		t.Errorf("tableB.csv has %d records after rewrite, want 3", got)
	}
	// The snapshot carries the covered sequence and is self-contained.
	_, info, err := persist.LoadFileInfo(filepath.Join(dir, SnapshotFile), sim.Standard(), cs.M.C.A, cs.M.C.B)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != uint64(len(script)) {
		t.Errorf("snapshot seq %d, want %d", info.Seq, len(script))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := Open(faultio.OS, dir, SyncPolicy{Mode: SyncAlways}, sim.Standard())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec.Replayed != 0 {
		t.Errorf("rewritten store replayed %d journal records, want 0", rec.Replayed)
	}
	if err := rec.Session.VerifyDeep(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, rec.Session), saveBytes(t, cs)) {
		t.Error("reopened session is not byte-identical to the compacted one")
	}
	if rec.Session.M.C.A.NumDeleted()+rec.Session.M.C.B.NumDeleted() != 0 {
		t.Error("reopened session still sees tombstones")
	}
	// The reopened store keeps journaling where the rewrite left off.
	next := Record{Op: "set_threshold", Rule: 0, Pred: 0, Threshold: 0.95}
	if err := Apply(rec.Session, next); err != nil {
		t.Fatal(err)
	}
	if err := st2.RecordEdit(rec.Session, next); err != nil {
		t.Fatal(err)
	}
	if st2.Seq() != uint64(len(script))+1 {
		t.Errorf("seq after resume %d, want %d", st2.Seq(), len(script)+1)
	}
}
