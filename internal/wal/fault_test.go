package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rulematch/internal/core"
	"rulematch/internal/faultio"
	"rulematch/internal/incremental"
	"rulematch/internal/persist"
	"rulematch/internal/rule"
	"rulematch/internal/sim"
	"rulematch/internal/table"
)

// editScript is the scripted 20-edit session the fault-injection
// sweep replays: every incremental operation kind appears, rules are
// added and removed, thresholds move both ways.
func editScript() []Record {
	return []Record{
		{Op: "set_threshold", Rule: 1, Pred: 0, Threshold: 0.6},
		{Op: "add_predicate", Rule: 1, Src: "jaccard(city, city) >= 0.2"},
		{Op: "tighten", Rule: 0, Pred: 0, Threshold: 0.92},
		{Op: "relax", Rule: 1, Pred: 1, Threshold: 0.1},
		{Op: "add_rule", Src: "rule r3: soundex(name, name) >= 0.5"},
		{Op: "set_threshold", Rule: 2, Pred: 0, Threshold: 0.6},
		{Op: "tighten", Rule: 1, Pred: 0, Threshold: 0.7},
		{Op: "remove_predicate", Rule: 1, Pred: 1},
		{Op: "add_predicate", Rule: 0, Src: "trigram(name, name) >= 0.3"},
		{Op: "relax", Rule: 0, Pred: 2, Threshold: 0.2},
		{Op: "remove_rule", Rule: 1},
		{Op: "add_rule", Src: "rule r4: jaccard(name, name) >= 0.4"},
		{Op: "tighten", Rule: 1, Pred: 0, Threshold: 0.7},
		{Op: "set_threshold", Rule: 2, Pred: 0, Threshold: 0.3},
		{Op: "add_predicate", Rule: 2, Src: "exact_match(city, city) >= 1"},
		{Op: "relax", Rule: 0, Pred: 0, Threshold: 0.88},
		{Op: "remove_predicate", Rule: 0, Pred: 2},
		{Op: "tighten", Rule: 2, Pred: 0, Threshold: 0.5},
		{Op: "remove_rule", Rule: 1},
		{Op: "set_threshold", Rule: 1, Pred: 1, Threshold: 0.5},
	}
}

// referenceStates returns, for every prefix length k of the script,
// the serialized state of an uncrashed session that applied exactly
// the first k edits.
func referenceStates(t *testing.T, script []Record) [][]byte {
	t.Helper()
	refs := make([][]byte, len(script)+1)
	for k := 0; k <= len(script); k++ {
		s, _, _ := buildSessionT(t)
		for _, rec := range script[:k] {
			if err := Apply(s, rec); err != nil {
				t.Fatalf("reference prefix %d: apply %+v: %v", k, rec, err)
			}
		}
		refs[k] = saveBytes(t, s)
	}
	return refs
}

// runStoredScript creates a store over fsys and pushes the script
// through it, stopping at the first persistence error (the simulated
// crash). It returns the error, if any.
func runStoredScript(fsys faultio.FS, dir string, compactAt int64, t *testing.T, script []Record) error {
	sess, a, b := buildSessionT(t)
	st, err := Create(fsys, dir, SyncPolicy{Mode: SyncAlways}, sess, a, b)
	if err != nil {
		return err
	}
	st.CompactAt = compactAt
	defer st.Close()
	for _, rec := range script {
		if err := Apply(sess, rec); err != nil {
			t.Fatalf("in-memory apply failed (script bug): %+v: %v", rec, err)
		}
		if err := st.RecordEdit(sess, rec); err != nil {
			return err
		}
	}
	// Close explicitly so a fault injected during the final sync/close
	// surfaces; the deferred Close above is then a no-op.
	return st.Close()
}

// checkRecovery recovers dir and asserts the crash-consistency
// contract: if a snapshot file exists it must load (never torn, never
// checksum-invalid); recovery must reach some prefix k of the script
// whose state is byte-identical to the uncrashed reference; and the
// recovered session must verify against a from-scratch evaluation.
func checkRecovery(t *testing.T, dir string, refs [][]byte, label string) {
	t.Helper()
	snapPath := filepath.Join(dir, SnapshotFile)
	if _, err := os.Stat(snapPath); err != nil {
		if !os.IsNotExist(err) {
			t.Fatal(err)
		}
		// Crash before the first snapshot published: the session was
		// never created; recovery must fail cleanly.
		if _, _, err := Open(faultio.OS, dir, SyncPolicy{Mode: SyncAlways}, sim.Standard()); err == nil {
			t.Fatalf("%s: recovery succeeded without a snapshot", label)
		}
		return
	}
	// The published snapshot is never torn: it must load on its own.
	aT, bT := freshTables(t)
	if _, _, err := persist.LoadFileInfo(snapPath, sim.Standard(), aT, bT); err != nil {
		t.Fatalf("%s: published snapshot does not load: %v", label, err)
	}
	st, rec, err := Open(faultio.OS, dir, SyncPolicy{Mode: SyncAlways}, sim.Standard())
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer st.Close()
	k := st.Seq()
	if k > uint64(len(refs)-1) {
		t.Fatalf("%s: recovered seq %d beyond script length", label, k)
	}
	if !bytes.Equal(saveBytes(t, rec.Session), refs[k]) {
		t.Fatalf("%s: recovered state at seq %d is not byte-identical to the uncrashed reference", label, k)
	}
	if err := rec.Session.VerifyDeep(); err != nil {
		t.Fatalf("%s: recovered session failed verification: %v", label, err)
	}
}

// sweep runs the scripted session once per injected crash point and
// checks recovery after every one.
func sweep(t *testing.T, mode faultio.Mode, compactAt int64, label string) {
	script := editScript()
	refs := referenceStates(t, script)

	// Dry run to learn the operation count.
	dry := &faultio.Injector{Base: faultio.OS}
	if err := runStoredScript(dry, filepath.Join(t.TempDir(), "dry"), compactAt, t, script); err != nil {
		t.Fatalf("dry run failed: %v", err)
	}
	total := dry.Ops()
	if total < 20 {
		t.Fatalf("dry run counted only %d ops", total)
	}

	root := t.TempDir()
	for at := 1; at <= total; at++ {
		dir := filepath.Join(root, label, "at", itoa(at))
		inj := &faultio.Injector{Base: faultio.OS, Mode: mode, At: at}
		err := runStoredScript(inj, dir, compactAt, t, script)
		if err == nil {
			t.Fatalf("%s at=%d: no error despite injected fault", label, at)
		}
		checkRecovery(t, dir, refs, label+"/at="+itoa(at))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestCrashSweep20Edits is the headline fault-injection sweep: for
// every filesystem operation of a scripted 20-edit durable session,
// simulate a kill at that operation and prove recovery lands on a
// byte-identical prefix state with no torn snapshot ever visible.
func TestCrashSweep20Edits(t *testing.T) {
	sweep(t, faultio.ModeCrash, 1<<30, "crash-journal")
}

// TestCrashSweepWithCompaction re-runs the sweep with compaction after
// every edit, so crash points land inside snapshot publication and
// journal rotation too.
func TestCrashSweepWithCompaction(t *testing.T) {
	sweep(t, faultio.ModeCrash, 1, "crash-compact")
}

// TestShortWriteSweep tears the active write in half at every write
// operation before killing the process: torn journal tails and torn
// temp snapshots must both be invisible after recovery.
func TestShortWriteSweep(t *testing.T) {
	sweep(t, faultio.ModeShortWrite, 1<<30, "tear-journal")
}

func TestShortWriteSweepWithCompaction(t *testing.T) {
	sweep(t, faultio.ModeShortWrite, 1, "tear-compact")
}

// TestJournalReplayEqualsFreshBatchRun pins the end-to-end journal
// semantics: replaying the full journal against a fresh session
// produces the same match bitmap as a from-scratch batch run of the
// final rule set.
func TestJournalReplayEqualsFreshBatchRun(t *testing.T) {
	script := editScript()
	dir := filepath.Join(t.TempDir(), "s")
	if err := runStoredScript(faultio.OS, dir, 1<<30, t, script); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(faultio.OS, dir, SyncPolicy{Mode: SyncAlways}, sim.Standard())
	if err != nil {
		t.Fatal(err)
	}
	// From-scratch batch run of the final rule set.
	f, err := rule.ParseFunction(rec.Session.M.C.Function().String())
	if err != nil {
		t.Fatal(err)
	}
	a, b := freshTables(t)
	c, err := core.Compile(f, sim.Standard(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	fresh := incremental.NewSession(c, rec.Session.M.Pairs)
	fresh.RunFull()
	if !fresh.St.Matched.Equal(rec.Session.St.Matched) {
		t.Fatal("journal replay match bitmap differs from a fresh batch run of the final rule set")
	}
}

// freshTables rebuilds the test tables without a session.
func freshTables(t *testing.T) (*table.Table, *table.Table) {
	_, a, b := buildSessionT(t)
	return a, b
}
