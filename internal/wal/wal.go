// Package wal implements the write-ahead edit journal that makes
// debugging sessions crash-safe: every committed incremental edit
// (the paper's Algorithms 7–10) is appended to an append-only log
// before it is acknowledged, so a crash — even kill -9 — loses no
// committed work. Recovery loads the last good snapshot
// (internal/persist) and replays the journal's surviving suffix;
// Store ties the two together per session directory and compacts the
// journal into a fresh snapshot once it grows past a threshold.
//
// On-disk format: an 8-byte magic ("EMWAL1\n" + NUL), then records,
// each framed as
//
//	uint32 LE payload length | uint32 LE CRC-32C | JSON payload
//
// A torn tail — a record cut short by a crash, or garbage after a
// partial append — is detected by the length/CRC check; recovery
// keeps every record before the first bad byte and truncates the rest
// (RepairFile), which is exactly the semantics of a crash between
// append and fsync: the un-synced suffix never happened.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"rulematch/internal/faultio"
	"rulematch/internal/table"
)

const (
	// Magic opens every journal file.
	Magic = "EMWAL1\n\x00"

	// MaxRecordBytes bounds a record's length prefix: a corrupt
	// length must not drive a huge allocation. Edit records are DSL
	// snippets plus indices, record batches are bounded by the server's
	// request size limit — a megabyte is generous. Exported so callers
	// accepting record batches (the emserve records endpoint) can
	// reject an over-limit batch before applying it.
	MaxRecordBytes = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one journaled edit operation. Op uses the same names as
// the emserve edit API: add_predicate, remove_predicate, tighten,
// relax, set_threshold, add_rule, remove_rule — plus the data-side
// ops record_append and record_delete.
type Record struct {
	// Seq numbers records 1,2,3,… within a session's history. A
	// snapshot covering seq S makes every record with Seq <= S
	// redundant; recovery replays only the suffix.
	Seq uint64 `json:"seq"`
	// Epoch is the replication epoch the record was written under.
	// Promotion of a replica bumps the epoch, so two nodes that both
	// believe they are primary stamp distinguishable histories: a
	// fenced (deposed) node's records carry a lower epoch and are
	// refused by followers that have seen the newer one.
	Epoch     uint64  `json:"epoch,omitempty"`
	Op        string  `json:"op"`
	Rule      int     `json:"rule"`
	Pred      int     `json:"pred,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// Src carries DSL source: the predicate for add_predicate, the
	// rule for add_rule.
	Src string `json:"src,omitempty"`
	// RecsA/RecsB carry the appended records for record_append, per
	// side; DelA/DelB carry the deleted record IDs for record_delete.
	RecsA []table.Record `json:"recs_a,omitempty"`
	RecsB []table.Record `json:"recs_b,omitempty"`
	DelA  []string       `json:"del_a,omitempty"`
	DelB  []string       `json:"del_b,omitempty"`
}

// SyncMode selects when appends reach stable storage.
type SyncMode int

const (
	// SyncAlways fsyncs after every append — no acknowledged edit is
	// ever lost, even to power failure.
	SyncAlways SyncMode = iota
	// SyncInterval fsyncs when Interval has elapsed since the last
	// sync — bounded loss under power failure, none under kill -9.
	SyncInterval
	// SyncNever leaves flushing to the OS — fastest; kill -9 still
	// loses nothing the kernel accepted, power failure may.
	SyncNever
)

// SyncPolicy is a SyncMode plus its interval.
type SyncPolicy struct {
	Mode     SyncMode
	Interval time.Duration
}

func (p SyncPolicy) String() string {
	switch p.Mode {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return p.Interval.String()
	}
}

// ParseSyncPolicy reads the -fsync flag syntax: "always", "never", or
// a duration ("100ms", "2s") for interval syncing.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncPolicy{Mode: SyncAlways}, nil
	case "never":
		return SyncPolicy{Mode: SyncNever}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return SyncPolicy{}, fmt.Errorf("wal: fsync policy %q: want always, never, or a positive duration", s)
	}
	return SyncPolicy{Mode: SyncInterval, Interval: d}, nil
}

// Writer appends records to a journal file.
type Writer struct {
	fsys     faultio.FS
	f        faultio.File
	path     string
	policy   SyncPolicy
	size     int64
	lastSync time.Time
}

// OpenWriter opens (or creates) the journal at path for appending.
// A brand-new (or empty) journal gets the magic header. The caller is
// responsible for having run recovery first — OpenWriter assumes the
// existing content is well-formed up to its size.
func OpenWriter(fsys faultio.FS, path string, policy SyncPolicy) (*Writer, error) {
	var size int64
	if fi, err := os.Stat(path); err == nil {
		size = fi.Size()
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("wal: stat journal: %w", err)
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open journal: %w", err)
	}
	w := &Writer{fsys: fsys, f: f, path: path, policy: policy, size: size, lastSync: time.Now()}
	if size == 0 {
		if _, err := f.Write([]byte(Magic)); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("wal: write journal header: %w", err)
		}
		w.size = int64(len(Magic))
		if policy.Mode != SyncNever {
			if err := f.Sync(); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("wal: sync journal header: %w", err)
			}
		}
	}
	return w, nil
}

// Append journals one record, frames it, writes it in a single write
// call and syncs per policy. On return with nil error the record is
// committed (durably so under SyncAlways).
func (w *Writer) Append(rec Record) error {
	frame, err := EncodeFrame(rec)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append record: %w", err)
	}
	w.size += int64(len(frame))
	switch w.policy.Mode {
	case SyncAlways:
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync journal: %w", err)
		}
		w.lastSync = time.Now()
	case SyncInterval:
		if time.Since(w.lastSync) >= w.policy.Interval {
			if err := w.f.Sync(); err != nil {
				return fmt.Errorf("wal: sync journal: %w", err)
			}
			w.lastSync = time.Now()
		}
	}
	return nil
}

// Sync forces an fsync regardless of policy.
func (w *Writer) Sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync journal: %w", err)
	}
	w.lastSync = time.Now()
	return nil
}

// Size returns the journal's current byte size (header + records).
func (w *Writer) Size() int64 { return w.size }

// Close closes the underlying file (syncing first unless the policy
// is SyncNever).
func (w *Writer) Close() error {
	if w.policy.Mode != SyncNever {
		if err := w.f.Sync(); err != nil {
			_ = w.f.Close()
			return fmt.Errorf("wal: sync on close: %w", err)
		}
	}
	return w.f.Close()
}

// Log is the result of reading a journal: the records that survived,
// and where the good prefix ends.
type Log struct {
	Records []Record
	// GoodSize is the byte offset of the first bad (torn, corrupt or
	// trailing-garbage) byte; equal to the file size for a clean log.
	GoodSize int64
	// Torn reports whether anything after GoodSize was discarded.
	Torn bool
}

// ReadLog reads a journal file, stopping at the first bad record — a
// short frame, an implausible length, a checksum mismatch, or a
// sequence number that does not increase. A missing file is an empty
// log. ReadLog never modifies the file; pass the result to RepairFile
// to truncate the torn tail before appending again.
func ReadLog(path string) (*Log, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &Log{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: read journal: %w", err)
	}
	return parseLog(data), nil
}

func parseLog(data []byte) *Log {
	log := &Log{}
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		// Header never completed: the whole file is a torn tail.
		log.Torn = len(data) > 0
		return log
	}
	off := int64(len(Magic))
	log.GoodSize = off
	var lastSeq uint64
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return log // clean end
		}
		if len(rest) < 8 {
			log.Torn = true
			return log
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n == 0 || n > MaxRecordBytes || int64(n) > int64(len(rest)-8) {
			log.Torn = true
			return log
		}
		payload := rest[8 : 8+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			log.Torn = true
			return log
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			log.Torn = true
			return log
		}
		if rec.Seq <= lastSeq {
			// Sequence must be strictly increasing; a repeat or
			// regression means the tail is not trustworthy.
			log.Torn = true
			return log
		}
		lastSeq = rec.Seq
		log.Records = append(log.Records, rec)
		off += int64(8 + n)
		log.GoodSize = off
	}
}

// ReadLogFrom parses a journal from an io.Reader (for tests and
// tooling); semantics match ReadLog.
func ReadLogFrom(r io.Reader) (*Log, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("wal: read journal: %w", err)
	}
	return parseLog(data), nil
}

// RepairFile truncates the journal's torn tail in place so appends
// can resume after the last good record. No-op for a clean log.
func RepairFile(fsys faultio.FS, path string, log *Log) error {
	if !log.Torn {
		return nil
	}
	if err := fsys.Truncate(path, log.GoodSize); err != nil {
		return fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	return nil
}

// LastSeq returns the sequence number of the final record (0 when
// empty).
func (l *Log) LastSeq() uint64 {
	if len(l.Records) == 0 {
		return 0
	}
	return l.Records[len(l.Records)-1].Seq
}
