package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"rulematch/internal/faultio"
	"rulematch/internal/incremental"
	"rulematch/internal/persist"
	"rulematch/internal/sim"
)

// saveBytes serializes a session's full state (bitmaps, memo, stats)
// for byte-identity comparisons.
func saveBytes(t *testing.T, s *incremental.Session) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := persist.Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStoreCreateRecoverRoundTrip(t *testing.T) {
	sess, a, b := buildSessionT(t)
	dir := filepath.Join(t.TempDir(), "s1")
	st, err := Create(faultio.OS, dir, SyncPolicy{Mode: SyncAlways}, sess, a, b)
	if err != nil {
		t.Fatal(err)
	}
	script := editScript()
	for _, rec := range script {
		if err := Apply(sess, rec); err != nil {
			t.Fatalf("apply %+v: %v", rec, err)
		}
		if err := st.RecordEdit(sess, rec); err != nil {
			t.Fatalf("record %+v: %v", rec, err)
		}
	}
	if st.Seq() != uint64(len(script)) {
		t.Fatalf("seq %d, want %d", st.Seq(), len(script))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := Open(faultio.OS, dir, SyncPolicy{Mode: SyncAlways}, sim.Standard())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Seq() != uint64(len(script)) {
		t.Fatalf("recovered seq %d, want %d", st2.Seq(), len(script))
	}
	if rec.Replayed != len(script) {
		t.Fatalf("replayed %d records, want %d", rec.Replayed, len(script))
	}
	if rec.Torn {
		t.Fatal("clean journal reported torn")
	}
	if !bytes.Equal(saveBytes(t, rec.Session), saveBytes(t, sess)) {
		t.Fatal("recovered session state is not byte-identical to the live one")
	}
	if err := rec.Session.VerifyDeep(); err != nil {
		t.Fatal(err)
	}
	// The recovered store keeps journaling where the old one stopped.
	next := Record{Op: "set_threshold", Rule: 0, Pred: 0, Threshold: 0.95}
	if err := Apply(rec.Session, next); err != nil {
		t.Fatal(err)
	}
	if err := st2.RecordEdit(rec.Session, next); err != nil {
		t.Fatal(err)
	}
	if st2.Seq() != uint64(len(script))+1 {
		t.Fatalf("seq after resume %d", st2.Seq())
	}
}

func TestStoreCompactionFoldsJournal(t *testing.T) {
	sess, a, b := buildSessionT(t)
	dir := filepath.Join(t.TempDir(), "s1")
	st, err := Create(faultio.OS, dir, SyncPolicy{Mode: SyncAlways}, sess, a, b)
	if err != nil {
		t.Fatal(err)
	}
	st.CompactAt = 1 // compact after every edit
	script := editScript()
	for _, rec := range script {
		if err := Apply(sess, rec); err != nil {
			t.Fatal(err)
		}
		if err := st.RecordEdit(sess, rec); err != nil {
			t.Fatal(err)
		}
	}
	// Journal rotated away: only the header remains.
	if got := st.JournalSize(); got != int64(len(Magic)) {
		t.Fatalf("journal size after compaction %d, want %d", got, len(Magic))
	}
	// The snapshot carries the covered sequence.
	_, info, err := persist.LoadFileInfo(filepath.Join(dir, SnapshotFile), sim.Standard(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != uint64(len(script)) {
		t.Fatalf("snapshot seq %d, want %d", info.Seq, len(script))
	}
	st.Close()

	st2, rec, err := Open(faultio.OS, dir, SyncPolicy{Mode: SyncAlways}, sim.Standard())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec.Replayed != 0 {
		t.Fatalf("compacted store replayed %d records", rec.Replayed)
	}
	if st2.Seq() != uint64(len(script)) {
		t.Fatalf("recovered seq %d", st2.Seq())
	}
	if !bytes.Equal(saveBytes(t, rec.Session), saveBytes(t, sess)) {
		t.Fatal("recovered-from-compacted state differs")
	}
}

func TestStoreDestroy(t *testing.T) {
	sess, a, b := buildSessionT(t)
	dir := filepath.Join(t.TempDir(), "s1")
	st, err := Create(faultio.OS, dir, SyncPolicy{Mode: SyncNever}, sess, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("session directory survived Destroy: %v", err)
	}
}

func TestStoreCreateRefusesExistingSnapshot(t *testing.T) {
	sess, a, b := buildSessionT(t)
	dir := filepath.Join(t.TempDir(), "s1")
	st, err := Create(faultio.OS, dir, SyncPolicy{Mode: SyncNever}, sess, a, b)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := Create(faultio.OS, dir, SyncPolicy{Mode: SyncNever}, sess, a, b); err == nil {
		t.Fatal("Create over an existing session directory accepted")
	}
}
