package wal

import (
	"bytes"
	"errors"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"rulematch/internal/faultio"
)

// The rotation race: replication readers follow the journal while
// compaction renames a fresh one over it. The contract under test:
//
//   - Tail.Poll holds file-only state and runs with NO lock; a
//     rotation under its feet must surface as a clean ErrRotated (or a
//     benign empty poll), never as garbage records or a non-rotation
//     error.
//   - Store.FramesAfter runs under the session's read lock (the
//     writer compacts under the write lock); it must never tear — every
//     byte it returns decodes as a whole, CRC-clean, contiguous frame
//     run — and a stale cursor resolves as ErrRotated.
//
// Run under -race this also proves the locking discipline around the
// store's seq/snapSeq fields.
func TestTailAndFramesAfterRaceCompactRewrite(t *testing.T) {
	sess, a, b := buildSessionT(t)
	dir := filepath.Join(t.TempDir(), "race")
	st, err := Create(faultio.OS, dir, SyncPolicy{Mode: SyncNever}, sess, a, b)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	journal := filepath.Join(dir, JournalFile)

	const (
		edits      = 400
		compactNth = 25 // rotate the journal every 25 edits
	)
	var lk sync.RWMutex // stands in for the session store's lock
	done := make(chan struct{})

	// Writer: the primary's life — journal edits, compact periodically.
	go func() {
		defer close(done)
		for i := 0; i < edits; i++ {
			rec := Record{Op: "set_threshold", Rule: 0, Pred: 0, Threshold: 0.5 + 0.001*float64(i%300)}
			lk.Lock()
			if err := Apply(sess, rec); err != nil {
				t.Errorf("apply %d: %v", i, err)
				lk.Unlock()
				return
			}
			if err := st.RecordEdit(sess, rec); err != nil {
				t.Errorf("record %d: %v", i, err)
				lk.Unlock()
				return
			}
			if i%compactNth == compactNth-1 {
				if err := st.CompactRewrite(sess, a, b); err != nil {
					t.Errorf("compact at %d: %v", i, err)
					lk.Unlock()
					return
				}
			}
			lk.Unlock()
			runtime.Gosched() // let readers land mid-rotation
		}
	}()

	// Lock-free tail: what a raw journal follower sees across
	// rotations. It may stall briefly on bytes racing a write (Poll
	// treats a CRC mismatch as retryable), but it must never return a
	// record it should not, and every error must be ErrRotated.
	var tailRotations int
	tailDone := make(chan struct{})
	go func() {
		defer close(tailDone)
		tail, err := NewTail(journal, 0)
		if err != nil {
			t.Errorf("tail open: %v", err)
			return
		}
		deadline := time.After(30 * time.Second)
		for {
			select {
			case <-deadline:
				t.Error("tail reader never finished")
				return
			default:
			}
			recs, err := tail.Poll()
			for _, rec := range recs {
				if rec.Op != "set_threshold" || rec.Seq == 0 || rec.Seq > edits {
					t.Errorf("tail read a torn or alien record: %+v", rec)
					return
				}
			}
			if err != nil {
				if !errors.Is(err, ErrRotated) {
					t.Errorf("tail poll: %v (want ErrRotated)", err)
					return
				}
				tailRotations++
				// Re-anchor past the latest snapshot, the way the
				// replication endpoint re-bootstraps a follower.
				lk.RLock()
				after := st.SnapshotSeq()
				lk.RUnlock()
				if tail, err = NewTail(journal, after); err != nil {
					t.Errorf("tail reopen: %v", err)
					return
				}
				continue
			}
			select {
			case <-done:
				if len(recs) == 0 {
					return // writer finished and the tail is drained
				}
			default:
			}
		}
	}()

	// Locked reader: the replication endpoint's exact access pattern.
	// Under the read lock nothing may ever tear, full stop.
	var cursor, rotations uint64
	for {
		lk.RLock()
		frames, last, err := st.FramesAfter(cursor)
		snap := st.SnapshotSeq()
		lk.RUnlock()
		switch {
		case errors.Is(err, ErrRotated):
			rotations++
			if snap < cursor {
				t.Fatalf("rotation moved the snapshot floor backward: %d -> %d", cursor, snap)
			}
			cursor = snap
		case err != nil:
			t.Fatalf("FramesAfter(%d): %v", cursor, err)
		case len(frames) > 0:
			lg, derr := ReadLogFrom(bytes.NewReader(append([]byte(Magic), frames...)))
			if derr != nil {
				t.Fatalf("FramesAfter returned undecodable bytes: %v", derr)
			}
			if lg.Torn {
				t.Fatalf("FramesAfter returned a torn frame run after cursor %d", cursor)
			}
			for i, rec := range lg.Records {
				if want := cursor + 1 + uint64(i); rec.Seq != want {
					t.Fatalf("frame gap: record %d has seq %d, want %d", i, rec.Seq, want)
				}
			}
			if last != cursor+uint64(len(lg.Records)) {
				t.Fatalf("FramesAfter reported last=%d for %d records after %d", last, len(lg.Records), cursor)
			}
			cursor = last
		}
		if cursor == edits {
			break
		}
		select {
		case <-done:
			// Writer finished; drain whatever remains and stop.
			if cursor == edits {
				break
			}
		default:
		}
	}
	<-done
	<-tailDone
	if cursor != edits {
		t.Fatalf("locked reader drained to %d, want %d", cursor, edits)
	}
	if rotations == 0 {
		t.Fatal("locked reader never raced a rotation; the test lost its point")
	}
	if tailRotations == 0 {
		t.Fatal("lock-free tail never observed a rotation; the test lost its point")
	}
}
