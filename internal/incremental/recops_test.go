package incremental

import (
	"fmt"
	"math/rand"
	"testing"

	"rulematch/internal/block"
	"rulematch/internal/core"
	"rulematch/internal/rule"
	"rulematch/internal/sim"
	"rulematch/internal/table"
)

// Shared vocabulary for the streaming fixtures: blocking on city keeps
// the candidate sets non-trivial, the name/phone perturbations keep the
// match decisions mixed.
var (
	streamCities = []string{"seattle", "madison", "chicago", "columbus", "springfield"}
	streamNames  = []string{"matthew richardson", "john smith", "maria garcia", "wei chen", "sara lopez", "omar patel"}
)

func streamRecord(rng *rand.Rand, id string) table.Record {
	name := streamNames[rng.Intn(len(streamNames))]
	if rng.Intn(2) == 0 {
		// Perturb: drop a character so similarities land near thresholds.
		k := 1 + rng.Intn(len(name)-2)
		name = name[:k] + name[k+1:]
	}
	phone := fmt.Sprintf("%03d-555-0%03d", 200+rng.Intn(20), rng.Intn(200))
	return table.Record{ID: id, Values: []string{name, phone, streamCities[rng.Intn(len(streamCities))]}}
}

func streamTables(t testing.TB, rng *rand.Rand, nA, nB int) (*table.Table, *table.Table) {
	t.Helper()
	a := table.MustNew("A", []string{"name", "phone", "city"})
	b := table.MustNew("B", []string{"name", "phone", "city"})
	for i := 0; i < nA; i++ {
		if _, err := a.AppendRecord(streamRecord(rng, fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < nB; j++ {
		if _, err := b.AppendRecord(streamRecord(rng, fmt.Sprintf("b%d", j))); err != nil {
			t.Fatal(err)
		}
	}
	return a, b
}

func scalarCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Engine = core.EngineScalar
	return cfg
}

func batchCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Engine = core.EngineBatch
	return cfg
}

const streamFunc = `
rule r1: jaro_winkler(name, name) >= 0.9 and exact_match(city, city) >= 1
rule r2: levenshtein(phone, phone) >= 0.9 and jaccard(name, name) >= 0.3
rule r3: trigram(name, name) >= 0.8
`

// blockedSession compiles streamFunc over the tables, blocks on city
// and materializes, with the blocker attached for record ops.
func blockedSession(t testing.TB, a, b *table.Table, cfg core.Config) *Session {
	t.Helper()
	f, err := rule.ParseFunction(streamFunc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(f, sim.Standard(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	blk := block.AttrEquivalence{Attr: "city"}
	pairs, err := blk.Pairs(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSessionConfig(c, pairs, cfg)
	s.Blocker = blk
	s.RunFull()
	return s
}

// assertStateParity compares the materialized state of two sessions
// bit for bit — they must index the same pair list.
func assertStateParity(t *testing.T, got, want *Session, context string) {
	t.Helper()
	if len(got.M.Pairs) != len(want.M.Pairs) {
		t.Fatalf("%s: %d pairs vs %d", context, len(got.M.Pairs), len(want.M.Pairs))
	}
	for pi := range want.M.Pairs {
		if got.M.Pairs[pi] != want.M.Pairs[pi] {
			t.Fatalf("%s: pair %d = %v vs %v", context, pi, got.M.Pairs[pi], want.M.Pairs[pi])
		}
	}
	if !got.St.Matched.Equal(want.St.Matched) {
		t.Fatalf("%s: Matched bitmaps differ", context)
	}
	for ri := range want.St.RuleTrue {
		if !got.St.RuleTrue[ri].Equal(want.St.RuleTrue[ri]) {
			t.Fatalf("%s: RuleTrue[%d] differs", context, ri)
		}
		for pj := range want.St.PredFalse[ri] {
			if !got.St.PredFalse[ri][pj].Equal(want.St.PredFalse[ri][pj]) {
				t.Fatalf("%s: PredFalse[%d][%d] differs", context, ri, pj)
			}
		}
	}
}

// assertMemoParity compares memo contents feature by feature, pair by
// pair: same presence, same value.
func assertMemoParity(t *testing.T, got, want *Session, context string) {
	t.Helper()
	nf := len(want.M.C.Features)
	for fi := 0; fi < nf; fi++ {
		for pi := range want.M.Pairs {
			wv, wok := want.M.Memo.Get(fi, pi)
			gv, gok := got.M.Memo.Get(fi, pi)
			if wok != gok || (wok && wv != gv) {
				t.Fatalf("%s: memo[%d][%d] = (%v,%v) vs (%v,%v)", context, fi, pi, gv, gok, wv, wok)
			}
		}
	}
}

// TestAddRecordsDeltaParity is the tentpole acceptance test: streaming
// append batches into a live session evaluates only the delta pairs yet
// leaves state and memo byte-identical to a cold full run over the
// final tables with the same pair list.
func TestAddRecordsDeltaParity(t *testing.T) {
	for _, cfg := range []struct {
		name string
		cfg  core.Config
	}{
		{"scalar", scalarCfg()},
		{"batch", batchCfg()},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			a, b := streamTables(t, rng, 12, 14)
			s := blockedSession(t, a, b, cfg.cfg)
			basePairs := len(s.M.Pairs)

			for batch := 0; batch < 4; batch++ {
				var aRecs, bRecs []table.Record
				for i := 0; i < 3; i++ {
					aRecs = append(aRecs, streamRecord(rng, fmt.Sprintf("a%d", a.Len()+i)))
				}
				for j := 0; j < 2; j++ {
					bRecs = append(bRecs, streamRecord(rng, fmt.Sprintf("b%d", b.Len()+j)))
				}
				before := len(s.M.Pairs)
				if err := s.AddRecords(aRecs, bRecs); err != nil {
					t.Fatal(err)
				}
				// Delta-only evaluation: the op touched exactly the new pairs.
				added := len(s.M.Pairs) - before
				if s.LastOp.PairsAdded != added || s.LastOp.PairsExamined != added {
					t.Fatalf("batch %d: report %+v, want %d pairs added and examined",
						batch, s.LastOp, added)
				}
				if s.LastOp.Stats.PairEvals != int64(added) {
					t.Fatalf("batch %d: evaluated %d pairs, want only the %d delta pairs",
						batch, s.LastOp.Stats.PairEvals, added)
				}
				if err := s.VerifyDeep(); err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
			}
			if len(s.M.Pairs) == basePairs {
				t.Fatal("degenerate fixture: appends produced no delta pairs")
			}

			// Cold oracle: compile the grown tables from scratch and
			// evaluate the exact same pair list in the same order.
			f, err := rule.ParseFunction(streamFunc)
			if err != nil {
				t.Fatal(err)
			}
			c2, err := core.Compile(f, sim.Standard(), a, b)
			if err != nil {
				t.Fatal(err)
			}
			cold := NewSessionConfig(c2, append([]table.Pair(nil), s.M.Pairs...), cfg.cfg)
			cold.RunFull()
			assertStateParity(t, s, cold, "stream vs cold")
			assertMemoParity(t, s, cold, "stream vs cold")
		})
	}
}

func TestAddRecordsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := streamTables(t, rng, 6, 6)
	s := blockedSession(t, a, b, scalarCfg())
	nPairs, nA := len(s.M.Pairs), a.Len()

	// Duplicate against the table.
	err := s.AddRecords([]table.Record{streamRecord(rng, "a0")}, nil)
	if err == nil {
		t.Fatal("duplicate ID accepted")
	}
	// Duplicate within the batch.
	err = s.AddRecords([]table.Record{streamRecord(rng, "ax"), streamRecord(rng, "ax")}, nil)
	if err == nil {
		t.Fatal("batch-internal duplicate accepted")
	}
	// Arity mismatch.
	err = s.AddRecords([]table.Record{{ID: "ay", Values: []string{"only one"}}}, nil)
	if err == nil {
		t.Fatal("arity mismatch accepted")
	}
	// All-or-nothing: nothing was applied.
	if a.Len() != nA || len(s.M.Pairs) != nPairs {
		t.Fatalf("failed batches mutated the session: %d records, %d pairs", a.Len(), len(s.M.Pairs))
	}
	// No blocker: appends unavailable, deletes still fine.
	s.Blocker = nil
	if err := s.AddRecords([]table.Record{streamRecord(rng, "az")}, nil); err == nil {
		t.Fatal("append without blocker accepted")
	}
	if err := s.DeleteRecords([]string{"a0"}, nil); err != nil {
		t.Fatalf("delete without blocker: %v", err)
	}
}

func TestDeleteRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := streamTables(t, rng, 10, 12)
	s := blockedSession(t, a, b, scalarCfg())
	total := len(s.M.Pairs)

	if err := s.DeleteRecords([]string{"a1", "a4"}, []string{"b3"}); err != nil {
		t.Fatal(err)
	}
	removed := s.LastOp.PairsRemoved
	if s.LivePairCount() != total-removed {
		t.Fatalf("LivePairCount = %d, want %d", s.LivePairCount(), total-removed)
	}
	for pi, p := range s.M.Pairs {
		dead := a.Deleted(int(p.A)) || b.Deleted(int(p.B))
		if dead && s.St.Matched.Get(pi) {
			t.Fatalf("dead pair %d still matched", pi)
		}
		if dead != (s.DeadPairs() != nil && s.DeadPairs().Get(pi)) {
			t.Fatalf("dead bitmap out of sync at pair %d", pi)
		}
	}
	if err := s.VerifyDeep(); err != nil {
		t.Fatal(err)
	}

	// Unknown and double deletes are rejected atomically.
	if err := s.DeleteRecords([]string{"a1"}, nil); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := s.DeleteRecords(nil, []string{"nope"}); err == nil {
		t.Fatal("unknown ID accepted")
	}

	// Rule edits must not resurrect dead pairs: relax every threshold
	// (the edit that re-examines recorded-false pairs), then sweep.
	for ri := range s.M.C.Rules {
		for pj := range s.M.C.Rules[ri].Preds {
			thr := s.M.C.Rules[ri].Preds[pj].Threshold
			if err := s.RelaxPredicate(ri, pj, thr*0.5); err != nil {
				t.Fatal(err)
			}
		}
	}
	dead := s.DeadPairs()
	for pi := 0; pi < len(s.M.Pairs); pi++ {
		if dead.Get(pi) && s.St.Matched.Get(pi) {
			t.Fatalf("relax resurrected dead pair %d", pi)
		}
	}
	if err := s.VerifyDeep(); err != nil {
		t.Fatalf("after relax: %v", err)
	}
	pts, err := s.SweepThreshold(0, 0, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	for pi := 0; pi < len(s.M.Pairs); pi++ {
		if dead.Get(pi) && pts[0].Matched.Get(pi) {
			t.Fatalf("sweep reported dead pair %d as matched", pi)
		}
	}
}

// matchedIDSet projects the matched pairs onto record IDs, the
// representation that survives different pair orderings.
func matchedIDSet(s *Session) map[[2]string]bool {
	a, b := s.M.C.A, s.M.C.B
	out := make(map[[2]string]bool)
	for pi, p := range s.M.Pairs {
		if s.St.Matched.Get(pi) {
			out[[2]string{a.Records[p.A].ID, b.Records[p.B].ID}] = true
		}
	}
	return out
}

// TestInterleavedOpsParity drives a random interleaving of record
// appends, record deletes and rule edits, then checks the session's
// live result equals a from-scratch batch run over the final tables
// and final rules — the data-side dual of the paper's edit-parity
// property.
func TestInterleavedOpsParity(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			a, b := streamTables(t, rng, 10, 12)
			s := blockedSession(t, a, b, scalarCfg())

			nextA, nextB := a.Len(), b.Len()
			for step := 0; step < 12; step++ {
				switch rng.Intn(4) {
				case 0: // append a small batch
					var aRecs, bRecs []table.Record
					for i := 0; i < 1+rng.Intn(3); i++ {
						aRecs = append(aRecs, streamRecord(rng, fmt.Sprintf("a%d", nextA)))
						nextA++
					}
					for j := 0; j < rng.Intn(3); j++ {
						bRecs = append(bRecs, streamRecord(rng, fmt.Sprintf("b%d", nextB)))
						nextB++
					}
					if err := s.AddRecords(aRecs, bRecs); err != nil {
						t.Fatal(err)
					}
				case 1: // delete one live record, if any remain
					if id, ok := pickLive(rng, a); ok {
						if err := s.DeleteRecords([]string{id}, nil); err != nil {
							t.Fatal(err)
						}
					}
				case 2: // threshold wiggle
					ri := rng.Intn(len(s.M.C.Rules))
					pj := rng.Intn(len(s.M.C.Rules[ri].Preds))
					thr := s.M.C.Rules[ri].Preds[pj].Threshold
					var err error
					if rng.Intn(2) == 0 {
						err = s.TightenPredicate(ri, pj, thr+0.02)
					} else {
						err = s.RelaxPredicate(ri, pj, thr-0.02)
					}
					if err != nil {
						t.Fatal(err)
					}
				case 3: // add then (sometimes) remove a rule
					r, err := rule.ParseRule(fmt.Sprintf("rule x%d: jaccard(name, name) >= 0.%d", step, 5+rng.Intn(4)))
					if err != nil {
						t.Fatal(err)
					}
					if err := s.AddRule(r); err != nil {
						t.Fatal(err)
					}
					if rng.Intn(2) == 0 {
						if err := s.RemoveRule(len(s.M.C.Rules) - 1); err != nil {
							t.Fatal(err)
						}
					}
				}
				if err := s.VerifyDeep(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}

			// From-scratch oracle: current rules over the final tables,
			// blocked fresh (deleted records skipped at the source).
			var f rule.Function
			for ri := range s.M.C.Rules {
				cr := &s.M.C.Rules[ri]
				r := rule.Rule{Name: cr.Name}
				for _, cp := range cr.Preds {
					r.Preds = append(r.Preds, rule.Predicate{
						Feature:   s.M.C.Features[cp.Feat].Feature,
						Op:        cp.Op,
						Threshold: cp.Threshold,
					})
				}
				f.Rules = append(f.Rules, r)
			}
			c2, err := core.Compile(f, sim.Standard(), a, b)
			if err != nil {
				t.Fatal(err)
			}
			blk := block.AttrEquivalence{Attr: "city"}
			pairs, err := blk.Pairs(a, b)
			if err != nil {
				t.Fatal(err)
			}
			cold := NewSession(c2, pairs)
			cold.RunFull()

			gotLive := livePairIDSet(s)
			wantLive := make(map[[2]string]bool, len(pairs))
			for _, p := range pairs {
				wantLive[[2]string{a.Records[p.A].ID, b.Records[p.B].ID}] = true
			}
			if len(gotLive) != len(wantLive) {
				t.Fatalf("live candidate sets differ: %d vs %d", len(gotLive), len(wantLive))
			}
			for k := range wantLive {
				if !gotLive[k] {
					t.Fatalf("cold candidate %v missing from live session pairs", k)
				}
			}
			got, want := matchedIDSet(s), matchedIDSet(cold)
			if len(got) != len(want) {
				t.Fatalf("matched sets differ in size: %d vs %d", len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("cold match %v missing from interleaved session", k)
				}
			}
		})
	}
}

func livePairIDSet(s *Session) map[[2]string]bool {
	a, b := s.M.C.A, s.M.C.B
	dead := s.DeadPairs()
	out := make(map[[2]string]bool)
	for pi, p := range s.M.Pairs {
		if dead != nil && dead.Get(pi) {
			continue
		}
		out[[2]string{a.Records[p.A].ID, b.Records[p.B].ID}] = true
	}
	return out
}

func pickLive(rng *rand.Rand, t *table.Table) (string, bool) {
	live := make([]int, 0, t.Len())
	for i := 0; i < t.Len(); i++ {
		if !t.Deleted(i) {
			live = append(live, i)
		}
	}
	if len(live) <= 2 {
		return "", false // keep the fixture non-degenerate
	}
	return t.Records[live[rng.Intn(len(live))]].ID, true
}
