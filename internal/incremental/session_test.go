package incremental

import (
	"fmt"
	"math/rand"
	"testing"

	"rulematch/internal/core"
	"rulematch/internal/rule"
	"rulematch/internal/sim"
	"rulematch/internal/table"
)

// fixture builds two name/phone/city tables with a mix of near and far
// pairs, and the full cross product as candidates.
func fixture(t testing.TB) (*table.Table, *table.Table, []table.Pair) {
	t.Helper()
	a := table.MustNew("A", []string{"name", "phone", "city"})
	b := table.MustNew("B", []string{"name", "phone", "city"})
	rowsA := [][]string{
		{"matthew richardson", "206-453-1978", "seattle"},
		{"john smith", "608-263-1000", "madison"},
		{"maria garcia", "312-555-0148", "chicago"},
		{"wei chen", "414-555-0199", "milwaukee"},
		{"sara lopez", "217-555-0123", "springfield"},
		{"omar patel", "614-555-0177", "columbus"},
	}
	rowsB := [][]string{
		{"matt richardson", "453 1978", "seattle"},
		{"jon smith", "608-263-1000", "madison"},
		{"mary garcia", "3125550148", "chicago"},
		{"alexandra cooper", "212-555-0101", "new york"},
		{"wei chen", "414-555-0199", "milwaukee"},
		{"sarah lopez", "217-555-0123", "springfield"},
		{"omar patel", "614 555 0177", "columbus"},
	}
	for i, r := range rowsA {
		if err := a.Append(fmt.Sprintf("a%d", i), r...); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range rowsB {
		if err := b.Append(fmt.Sprintf("b%d", i), r...); err != nil {
			t.Fatal(err)
		}
	}
	var pairs []table.Pair
	for i := range rowsA {
		for j := range rowsB {
			pairs = append(pairs, table.Pair{A: int32(i), B: int32(j)})
		}
	}
	return a, b, pairs
}

func newSession(t testing.TB, src string) *Session {
	t.Helper()
	a, b, pairs := fixture(t)
	f, err := rule.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(f, sim.Standard(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(c, pairs)
	s.RunFull()
	return s
}

const baseFunc = `
rule r1: jaro_winkler(name, name) >= 0.9 and exact_match(city, city) >= 1
rule r2: levenshtein(phone, phone) >= 0.9 and jaccard(name, name) >= 0.3
rule r3: trigram(name, name) >= 0.8
`

func mustVerify(t *testing.T, s *Session, context string) {
	t.Helper()
	if err := s.Verify(); err != nil {
		t.Fatalf("%s: %v", context, err)
	}
}

func TestRunFullMatchesOracle(t *testing.T) {
	s := newSession(t, baseFunc)
	mustVerify(t, s, "after RunFull")
	if s.MatchCount() == 0 || s.MatchCount() == len(s.M.Pairs) {
		t.Fatalf("degenerate fixture: %d matches", s.MatchCount())
	}
}

func TestOpsRequireRunFull(t *testing.T) {
	a, b, pairs := fixture(t)
	f, _ := rule.ParseFunction(baseFunc)
	c, err := core.Compile(f, sim.Standard(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(c, pairs)
	if err := s.AddRule(rule.Rule{Name: "x", Preds: []rule.Predicate{{
		Feature: rule.Feature{Sim: "jaro", AttrA: "name", AttrB: "name"}, Op: rule.Ge, Threshold: 0.5}}}); err == nil {
		t.Error("AddRule before RunFull accepted")
	}
	if err := s.RemoveRule(0); err == nil {
		t.Error("RemoveRule before RunFull accepted")
	}
}

func TestAddPredicate(t *testing.T) {
	s := newSession(t, baseFunc)
	before := s.MatchCount()
	p, err := rule.ParsePredicate("jaccard(city, city) >= 0.99")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddPredicate(2, p); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s, "after AddPredicate")
	if s.MatchCount() > before {
		t.Error("adding a predicate increased matches")
	}
	if s.LastOp.Op != "add_predicate" {
		t.Errorf("op = %q", s.LastOp.Op)
	}
	// Only pairs owned by the changed rule are examined.
	if s.LastOp.PairsExamined > len(s.M.Pairs) {
		t.Errorf("examined %d pairs", s.LastOp.PairsExamined)
	}
}

func TestAddPredicateWithNewFeature(t *testing.T) {
	s := newSession(t, baseFunc)
	nf := len(s.M.C.Features)
	p, err := rule.ParsePredicate("soundex(name, name) >= 0.4")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddPredicate(0, p); err != nil {
		t.Fatal(err)
	}
	if len(s.M.C.Features) != nf+1 {
		t.Errorf("features = %d, want %d", len(s.M.C.Features), nf+1)
	}
	mustVerify(t, s, "after AddPredicate with new feature")
}

func TestTightenPredicate(t *testing.T) {
	s := newSession(t, baseFunc)
	if err := s.TightenPredicate(2, 0, 0.95); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s, "after TightenPredicate")
	// Direction checks.
	if err := s.TightenPredicate(2, 0, 0.5); err == nil {
		t.Error("loosening via Tighten accepted")
	}
	if err := s.TightenPredicate(2, 0, 0.95); err == nil {
		t.Error("no-op threshold accepted")
	}
}

func TestRelaxPredicate(t *testing.T) {
	s := newSession(t, baseFunc)
	before := s.MatchCount()
	if err := s.RelaxPredicate(0, 0, 0.7); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s, "after RelaxPredicate")
	if s.MatchCount() < before {
		t.Error("relaxing a predicate decreased matches")
	}
	if err := s.RelaxPredicate(0, 0, 0.9); err == nil {
		t.Error("tightening via Relax accepted")
	}
}

func TestRemovePredicate(t *testing.T) {
	s := newSession(t, baseFunc)
	before := s.MatchCount()
	if err := s.RemovePredicate(1, 1); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s, "after RemovePredicate")
	if s.MatchCount() < before {
		t.Error("removing a predicate decreased matches")
	}
	if len(s.M.C.Rules[1].Preds) != 1 {
		t.Errorf("preds left = %d", len(s.M.C.Rules[1].Preds))
	}
	if err := s.RemovePredicate(1, 0); err == nil {
		t.Error("removing the only predicate accepted")
	}
}

func TestRemoveRule(t *testing.T) {
	s := newSession(t, baseFunc)
	if err := s.RemoveRule(1); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s, "after RemoveRule(1)")
	if len(s.M.C.Rules) != 2 {
		t.Errorf("rules = %d", len(s.M.C.Rules))
	}
	// Remove the (new) first rule too.
	if err := s.RemoveRule(0); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s, "after RemoveRule(0)")
	if err := s.RemoveRule(5); err == nil {
		t.Error("out-of-range rule accepted")
	}
}

func TestAddRule(t *testing.T) {
	s := newSession(t, baseFunc)
	before := s.MatchCount()
	unmatchedBefore := len(s.M.Pairs) - before
	r, err := rule.ParseRule("r4: soundex(name, name) >= 0.6 and exact_match(city, city) >= 1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddRule(r); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s, "after AddRule")
	if s.MatchCount() < before {
		t.Error("adding a rule decreased matches")
	}
	// Algorithm 10: only unmatched pairs are examined.
	if s.LastOp.PairsExamined != unmatchedBefore {
		t.Errorf("examined %d pairs, want %d unmatched", s.LastOp.PairsExamined, unmatchedBefore)
	}
}

func TestSetThresholdDispatch(t *testing.T) {
	s := newSession(t, baseFunc)
	if err := s.SetThreshold(2, 0, 0.95); err != nil {
		t.Fatal(err)
	}
	if s.LastOp.Op != "tighten_predicate" {
		t.Errorf("op = %q, want tighten", s.LastOp.Op)
	}
	if err := s.SetThreshold(2, 0, 0.6); err != nil {
		t.Fatal(err)
	}
	if s.LastOp.Op != "relax_predicate" {
		t.Errorf("op = %q, want relax", s.LastOp.Op)
	}
	if err := s.SetThreshold(2, 0, 0.6); err != nil {
		t.Fatal(err)
	}
	if s.LastOp.Op != "set_threshold_noop" {
		t.Errorf("op = %q, want noop", s.LastOp.Op)
	}
	mustVerify(t, s, "after SetThreshold sequence")
}

// Regression test for the ownership-migration subtlety: relaxing a
// predicate makes an EARLIER rule true for a pair owned by a LATER
// rule; a subsequent tighten of the later rule must not lose the match.
func TestRelaxThenTightenOwnershipMigration(t *testing.T) {
	// For the exact-duplicate "wei chen" pair, r1 is initially false
	// (trigram of identical names is 1, failing the < 0.99 predicate)
	// while r2 (equal phones) matches it — so r2 owns the pair. Relaxing
	// r1's upper bound makes the EARLIER rule true for it; ownership
	// must migrate to r1, or the later RemoveRule(r2) — which only
	// re-evaluates rules after r2 — would lose the match.
	src := `
rule r1: jaro_winkler(name, name) >= 0.9 and trigram(name, name) < 0.99
rule r2: levenshtein(phone, phone) >= 0.9 and jaccard(name, name) >= 0.3`
	s := newSession(t, src)
	mustVerify(t, s, "initial")
	weiPair := -1
	for pi, p := range s.M.Pairs {
		if s.M.C.A.Records[p.A].Values[0] == "wei chen" && s.M.C.B.Records[p.B].Values[0] == "wei chen" {
			weiPair = pi
		}
	}
	if weiPair < 0 || !s.Matched(weiPair) {
		t.Fatalf("fixture: wei chen pair %d not matched initially", weiPair)
	}
	if !s.St.RuleTrue[1].Get(weiPair) {
		t.Fatal("fixture: wei chen pair not owned by r2")
	}
	// Relax r1's trigram upper bound past 1: r1 now covers wei chen.
	if err := s.RelaxPredicate(0, 1, 1.01); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s, "after relax")
	if s.LastOp.OwnershipMoves == 0 {
		t.Fatal("relax did not migrate ownership (scenario not exercised)")
	}
	if !s.St.RuleTrue[0].Get(weiPair) {
		t.Fatal("wei chen pair not migrated to r1")
	}
	// Remove r2: pairs it owns are only re-checked against later rules.
	if err := s.RemoveRule(1); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s, "after remove")
	if !s.Matched(weiPair) {
		t.Fatal("pair lost despite earlier rule matching it (ownership migration broken)")
	}
}

func TestIncrementalCheaperThanFullRerun(t *testing.T) {
	s := newSession(t, baseFunc)
	r, _ := rule.ParseRule("r4: soundex(name, name) >= 0.6")
	if err := s.AddRule(r); err != nil {
		t.Fatal(err)
	}
	incrementalEvals := s.LastOp.Stats.RuleEvals
	s.RunFullWithMemo()
	fullEvals := s.LastOp.Stats.RuleEvals
	if incrementalEvals >= fullEvals {
		t.Errorf("incremental add-rule evaluated %d rules, full rerun %d", incrementalEvals, fullEvals)
	}
}

func TestMemoryBytes(t *testing.T) {
	s := newSession(t, baseFunc)
	memo, bitmaps := s.MemoryBytes()
	if memo <= 0 || bitmaps <= 0 {
		t.Errorf("memory report memo=%d bitmaps=%d", memo, bitmaps)
	}
}

// Property test: a long random sequence of incremental operations always
// agrees with from-scratch evaluation.
func TestQuickRandomOpSequences(t *testing.T) {
	sims := []string{"jaro", "jaro_winkler", "levenshtein", "jaccard", "trigram", "soundex", "exact_match"}
	attrs := []string{"name", "phone", "city"}
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 17))
		randPred := func() rule.Predicate {
			op := rule.Ge
			if rng.Intn(3) == 0 {
				op = rule.Lt
			}
			attr := attrs[rng.Intn(len(attrs))]
			return rule.Predicate{
				Feature:   rule.Feature{Sim: sims[rng.Intn(len(sims))], AttrA: attr, AttrB: attr},
				Op:        op,
				Threshold: float64(1+rng.Intn(9)) / 10,
			}
		}
		var f rule.Function
		for ri := 0; ri < 2+rng.Intn(3); ri++ {
			r := rule.Rule{Name: fmt.Sprintf("r%d", ri+1)}
			for pj := 0; pj < 1+rng.Intn(3); pj++ {
				r.Preds = append(r.Preds, randPred())
			}
			f.Rules = append(f.Rules, r)
		}
		a, b, pairs := fixture(t)
		c, err := core.Compile(f, sim.Standard(), a, b)
		if err != nil {
			continue
		}
		s := NewSession(c, pairs)
		s.RunFull()
		for step := 0; step < 30; step++ {
			nRules := len(s.M.C.Rules)
			switch rng.Intn(6) {
			case 0: // add rule
				r := rule.Rule{Name: fmt.Sprintf("x%d_%d", trial, step)}
				for pj := 0; pj < 1+rng.Intn(2); pj++ {
					r.Preds = append(r.Preds, randPred())
				}
				if err := s.AddRule(r); err != nil {
					continue
				}
			case 1: // remove rule
				if nRules <= 1 {
					continue
				}
				if err := s.RemoveRule(rng.Intn(nRules)); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
			case 2: // add predicate
				if err := s.AddPredicate(rng.Intn(nRules), randPred()); err != nil {
					continue // may contradict: acceptable rejection
				}
			case 3: // remove predicate
				ri := rng.Intn(nRules)
				np := len(s.M.C.Rules[ri].Preds)
				if np <= 1 {
					continue
				}
				if err := s.RemovePredicate(ri, rng.Intn(np)); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
			default: // move a threshold either way
				ri := rng.Intn(nRules)
				np := len(s.M.C.Rules[ri].Preds)
				pj := rng.Intn(np)
				delta := float64(1+rng.Intn(3)) / 10
				if rng.Intn(2) == 0 {
					delta = -delta
				}
				nt := s.M.C.Rules[ri].Preds[pj].Threshold + delta
				if err := s.SetThreshold(ri, pj, nt); err != nil {
					continue
				}
			}
			if err := s.VerifyDeep(); err != nil {
				t.Fatalf("trial %d step %d (%s): %v", trial, step, s.LastOp.Op, err)
			}
		}
	}
}

func TestSweepThreshold(t *testing.T) {
	s := newSession(t, baseFunc)
	before := s.MatchCount()
	stateBefore := s.St.Matched.Clone()
	thresholds := DefaultSweep(9)
	points, err := s.SweepThreshold(2, 0, thresholds)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(thresholds) {
		t.Fatalf("points = %d", len(points))
	}
	// Rule 2's predicate is a lower bound: match counts must be
	// non-increasing in the threshold.
	for i := 1; i < len(points); i++ {
		if points[i].Matched.Count() > points[i-1].Matched.Count() {
			t.Errorf("sweep not monotone at %v: %d > %d",
				points[i].Threshold, points[i].Matched.Count(), points[i-1].Matched.Count())
		}
	}
	// Session state untouched.
	if s.MatchCount() != before || !s.St.Matched.Equal(stateBefore) {
		t.Error("sweep mutated session state")
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// A sweep point at the current threshold reproduces current matches.
	cur := s.M.C.Rules[2].Preds[0].Threshold
	pts, err := s.SweepThreshold(2, 0, []float64{cur})
	if err != nil {
		t.Fatal(err)
	}
	if !pts[0].Matched.Equal(s.St.Matched) {
		t.Error("sweep at the current threshold differs from current state")
	}
	if pts[0].String() == "" {
		t.Error("empty sweep point string")
	}
}

func TestRunFullParallelMatchesSerial(t *testing.T) {
	serial := newSession(t, baseFunc)
	// A static-order serial run is the byte-level reference for the
	// full state (PredFalse included).
	staticRef := newSessionNoRun(t, baseFunc)
	staticRef.M.CheckCacheFirst = false
	staticRef.RunFull()
	for _, workers := range []int{1, 2, 3, 8} {
		s := newSessionNoRun(t, baseFunc)
		s.RunFullParallel(workers)
		if s.LastOp.Op != "full_parallel" {
			t.Fatalf("workers=%d: op = %q", workers, s.LastOp.Op)
		}
		if s.LastOp.PairsExamined != len(s.M.Pairs) {
			t.Fatalf("workers=%d: examined %d pairs", workers, s.LastOp.PairsExamined)
		}
		if !s.St.Matched.Equal(serial.St.Matched) {
			t.Fatalf("workers=%d: Matched differs from serial RunFull", workers)
		}
		for ri := range s.St.RuleTrue {
			if !s.St.RuleTrue[ri].Equal(serial.St.RuleTrue[ri]) {
				t.Fatalf("workers=%d: RuleTrue[%d] differs from serial RunFull", workers, ri)
			}
		}
		if !s.St.Equal(staticRef.St) {
			t.Fatalf("workers=%d: state differs from static-order serial run", workers)
		}
		if err := s.VerifyDeep(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

// newSessionNoRun is newSession without the initial RunFull.
func newSessionNoRun(t testing.TB, src string) *Session {
	t.Helper()
	a, b, pairs := fixture(t)
	f, err := rule.ParseFunction(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(f, sim.Standard(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(c, pairs)
}

// Incremental operations must behave identically after a parallel
// bootstrap: check-cache-first resumes and all invariants hold through
// an op sequence.
func TestIncrementalOpsAfterParallelBootstrap(t *testing.T) {
	s := newSessionNoRun(t, baseFunc)
	s.RunFullParallel(4)
	if err := s.VerifyDeep(); err != nil {
		t.Fatal(err)
	}
	r, err := rule.ParseRule("r4: soundex(name, name) >= 0.6 and exact_match(city, city) >= 1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddRule(r); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyDeep(); err != nil {
		t.Fatalf("after AddRule: %v", err)
	}
	if err := s.SetThreshold(2, 0, 0.95); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyDeep(); err != nil {
		t.Fatalf("after tighten: %v", err)
	}
	if err := s.SetThreshold(2, 0, 0.6); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyDeep(); err != nil {
		t.Fatalf("after relax: %v", err)
	}
	if err := s.RemoveRule(1); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyDeep(); err != nil {
		t.Fatalf("after RemoveRule: %v", err)
	}
	// A parallel re-run on the now-warm memo recomputes nothing for
	// memoized features and still validates.
	s.RunFullParallel(3)
	if err := s.VerifyDeep(); err != nil {
		t.Fatalf("after warm parallel re-run: %v", err)
	}
}

func TestSweepThresholdParallelMatchesSerial(t *testing.T) {
	serial := newSession(t, baseFunc)
	thresholds := DefaultSweep(9)
	want, err := serial.SweepThreshold(2, 0, thresholds)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3, 8} {
		s := newSession(t, baseFunc)
		stateBefore := s.St.Matched.Clone()
		thrBefore := s.M.C.Rules[2].Preds[0].Threshold
		got, err := s.SweepThresholdParallel(2, 0, thresholds, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].Threshold != want[i].Threshold || !got[i].Matched.Equal(want[i].Matched) {
				t.Fatalf("workers=%d: point %d (thr=%v) differs from serial sweep",
					workers, i, got[i].Threshold)
			}
		}
		// The sweep is a read-only what-if: state and threshold restored.
		if !s.St.Matched.Equal(stateBefore) {
			t.Fatalf("workers=%d: sweep mutated session state", workers)
		}
		if s.M.C.Rules[2].Preds[0].Threshold != thrBefore {
			t.Fatalf("workers=%d: sweep left threshold mutated", workers)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestSweepThresholdParallelValidation(t *testing.T) {
	s := newSession(t, baseFunc)
	if _, err := s.SweepThresholdParallel(99, 0, DefaultSweep(3), 2); err == nil {
		t.Error("bad rule index accepted")
	}
	if _, err := s.SweepThresholdParallel(0, 99, DefaultSweep(3), 2); err == nil {
		t.Error("bad predicate index accepted")
	}
	pts, err := s.SweepThresholdParallel(0, 0, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 0 {
		t.Errorf("empty sweep returned %d points", len(pts))
	}
}

func TestSweepThresholdValidation(t *testing.T) {
	s := newSession(t, baseFunc)
	if _, err := s.SweepThreshold(99, 0, DefaultSweep(3)); err == nil {
		t.Error("bad rule index accepted")
	}
	if _, err := s.SweepThreshold(0, 99, DefaultSweep(3)); err == nil {
		t.Error("bad predicate index accepted")
	}
	if got := len(DefaultSweep(0)); got != 9 {
		t.Errorf("default sweep steps = %d", got)
	}
}
