package incremental

import (
	"fmt"

	"rulematch/internal/bitmap"
	"rulematch/internal/table"
)

// Record operations make the *data* side of a session incremental, the
// dual of the paper's rule edits: appended records flow through delta
// blocking into new candidate pairs evaluated in isolation, and
// deleted records tombstone their pairs with a bitmap clear and no
// re-evaluation. Both leave the materialized state satisfying the
// three session invariants over live pairs.
//
// Parity contract for appends (differential-tested): evaluating only
// the delta range leaves state, memo and per-pair stats byte-identical
// to a cold full run over the same pair list — the engines' per-pair
// work is independent of block boundaries, and a new pair shares no
// state with old ones.
//
// Known limitation: corpus-backed similarities (tf_idf, soft_tf_idf)
// keep their document frequencies frozen at feature-bind time, so
// appended records are scored against the original corpus. A snapshot
// reload rebuilds corpora over the grown tables; avoid corpus
// similarities when byte-stable recovery across appends matters.

// AddRecords appends a batch of records to the session's tables,
// blocks them incrementally through the session Blocker, grows the
// pair dimension of memo, bitmaps and owner bookkeeping in place, and
// evaluates only the delta pairs. The whole batch is validated
// (schema arity, duplicate IDs) before anything is mutated, so an
// error leaves the session untouched.
func (s *Session) AddRecords(aRecs, bRecs []table.Record) error {
	if err := s.checkState(); err != nil {
		return err
	}
	if len(aRecs)+len(bRecs) == 0 {
		s.LastOp = OpReport{Op: "add_records"}
		return nil
	}
	if s.Blocker == nil {
		return fmt.Errorf("incremental: session has no blocker; record appends are unavailable")
	}
	a, b := s.M.C.A, s.M.C.B
	if err := validateBatch(a, aRecs); err != nil {
		return err
	}
	if err := validateBatch(b, bRecs); err != nil {
		return err
	}
	oldA, oldB := a.Len(), b.Len()
	for _, r := range aRecs {
		if _, err := a.AppendRecord(r); err != nil {
			return err // unreachable after validateBatch
		}
	}
	for _, r := range bRecs {
		if _, err := b.AppendRecord(r); err != nil {
			return err
		}
	}
	delta, err := s.Blocker.PairsDelta(a, b, oldA, oldB)
	if err != nil {
		return fmt.Errorf("incremental: delta blocking: %w", err)
	}
	s.M.C.ExtendRecords()
	before := s.M.Stats
	oldN := len(s.M.Pairs)
	s.M.ExtendPairs(delta)
	n := len(s.M.Pairs)
	s.St.ExtendPairs(n)
	if s.dead != nil {
		s.dead.Grow(n)
	}
	s.M.MatchStateRange(s.St, oldN, n)
	if s.owners != nil {
		for pi := oldN; pi < n; pi++ {
			owner := int32(-1)
			if s.St.Matched.Get(pi) {
				for ri := range s.St.RuleTrue {
					if s.St.RuleTrue[ri].Get(pi) {
						owner = int32(ri)
						break
					}
				}
			}
			s.owners = append(s.owners, owner)
		}
	}
	s.LastOp = OpReport{
		Op:            "add_records",
		PairsExamined: len(delta),
		PairsAdded:    len(delta),
		Stats:         diffStats(before, s.M.Stats),
	}
	return nil
}

// ValidateAppend pre-checks an append batch without mutating the
// session: blocker availability, schema arity and ID uniqueness. Since
// deleted IDs stay permanently reserved, the answer is unaffected by
// deletes applied between this check and AddRecords — callers (the
// emserve records endpoint) use it to make a combined delete+append
// request all-or-nothing.
func (s *Session) ValidateAppend(aRecs, bRecs []table.Record) error {
	if len(aRecs)+len(bRecs) == 0 {
		return nil
	}
	if s.Blocker == nil {
		return fmt.Errorf("incremental: session has no blocker; record appends are unavailable")
	}
	if err := validateBatch(s.M.C.A, aRecs); err != nil {
		return err
	}
	return validateBatch(s.M.C.B, bRecs)
}

// validateBatch pre-checks a record batch against a table: value arity
// and ID uniqueness (against the table and within the batch), so the
// batch either applies in full or not at all.
func validateBatch(t *table.Table, recs []table.Record) error {
	seen := make(map[string]struct{}, len(recs))
	for _, r := range recs {
		if len(r.Values) != len(t.Attrs) {
			return fmt.Errorf("incremental: table %q: record %q has %d values, schema has %d attributes",
				t.Name, r.ID, len(r.Values), len(t.Attrs))
		}
		if _, ok := t.RecordByID(r.ID); ok {
			return fmt.Errorf("incremental: table %q: duplicate record ID %q", t.Name, r.ID)
		}
		if _, dup := seen[r.ID]; dup {
			return fmt.Errorf("incremental: table %q: record ID %q appears twice in the batch", t.Name, r.ID)
		}
		seen[r.ID] = struct{}{}
	}
	return nil
}

// DeleteRecords tombstones records by ID and clears every state bit of
// the pairs they participate in — no re-evaluation is needed: removing
// a record can never make another pair match or unmatch, it only
// removes its own pairs from the result. The record slots (and their
// IDs) stay reserved so pair indices remain stable; the tombstoned
// pairs are excluded from every later operation via the dead bitmap.
// The whole batch is validated before anything is mutated.
func (s *Session) DeleteRecords(aIDs, bIDs []string) error {
	if err := s.checkState(); err != nil {
		return err
	}
	if len(aIDs)+len(bIDs) == 0 {
		s.LastOp = OpReport{Op: "delete_records"}
		return nil
	}
	a, b := s.M.C.A, s.M.C.B
	delA, err := resolveLive(a, aIDs)
	if err != nil {
		return err
	}
	delB, err := resolveLive(b, bIDs)
	if err != nil {
		return err
	}
	for _, id := range aIDs {
		if _, err := a.DeleteRecord(id); err != nil {
			return err // unreachable after resolveLive
		}
	}
	for _, id := range bIDs {
		if _, err := b.DeleteRecord(id); err != nil {
			return err
		}
	}
	n := len(s.M.Pairs)
	newDead := bitmap.New(n)
	removed := 0
	for pi, p := range s.M.Pairs {
		if s.dead != nil && s.dead.Get(pi) {
			continue
		}
		if _, dd := delA[p.A]; !dd {
			if _, dd = delB[p.B]; !dd {
				continue
			}
		}
		newDead.Set(pi)
		removed++
		if s.owners != nil {
			s.owners[pi] = -1
		}
	}
	if removed > 0 {
		s.St.ClearPairs(newDead)
		if s.dead == nil {
			s.dead = newDead
		} else {
			s.dead.Or(newDead)
		}
	}
	s.LastOp = OpReport{Op: "delete_records", PairsExamined: removed, PairsRemoved: removed}
	return nil
}

// resolveLive maps IDs to live record indices, failing on unknown or
// already-deleted IDs and duplicates within the batch.
func resolveLive(t *table.Table, ids []string) (map[int32]struct{}, error) {
	out := make(map[int32]struct{}, len(ids))
	for _, id := range ids {
		i, ok := t.RecordByID(id)
		if !ok {
			return nil, fmt.Errorf("incremental: table %q: no record with ID %q", t.Name, id)
		}
		if t.Deleted(i) {
			return nil, fmt.Errorf("incremental: table %q: record %q already deleted", t.Name, id)
		}
		if _, dup := out[int32(i)]; dup {
			return nil, fmt.Errorf("incremental: table %q: record ID %q appears twice in the batch", t.Name, id)
		}
		out[int32(i)] = struct{}{}
	}
	return out, nil
}
