package incremental

import (
	"context"
	"testing"

	"rulematch/internal/core"
	"rulematch/internal/rule"
	"rulematch/internal/sim"
	"rulematch/internal/table"
)

// buildSession compiles baseFunc against the fixture tables and starts
// a session with the given core options (no initial run).
func buildSession(t testing.TB, a, b *table.Table, pairs []table.Pair, opts ...core.Option) *Session {
	t.Helper()
	f, err := rule.ParseFunction(baseFunc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(f, sim.Standard(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(c, pairs, opts...)
}

// A cancelled full re-run must leave the previous materialized state
// standing and valid.
func TestRunFullParallelCtxCancelled(t *testing.T) {
	s := newSession(t, baseFunc)
	wantMatches := s.MatchCount()
	statsBefore := s.M.Stats

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.RunFullParallelCtx(cancelled, 4); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.MatchCount() != wantMatches {
		t.Fatal("cancelled run changed the match set")
	}
	if s.M.Stats != statsBefore {
		t.Fatal("cancelled run added stats")
	}
	mustVerify(t, s, "after cancelled full run")

	// And a live context still works, byte-identically to serial.
	if err := s.RunFullParallelCtx(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	if s.MatchCount() != wantMatches {
		t.Fatal("parallel re-run changed the match set")
	}
	mustVerify(t, s, "after live full run")
}

// A cancelled sweep must leave the session untouched (thresholds,
// memo, stats) and still valid; an uncancelled ctx sweep must agree
// with the serial sweep.
func TestSweepThresholdParallelCtx(t *testing.T) {
	s := newSession(t, baseFunc)
	thresholds := DefaultSweep(9)
	want, err := s.SweepThreshold(0, 0, thresholds)
	if err != nil {
		t.Fatal(err)
	}

	got, err := s.SweepThresholdParallelCtx(context.Background(), 0, 0, thresholds, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !got[i].Matched.Equal(want[i].Matched) {
			t.Fatalf("ctx sweep point %d differs from serial", i)
		}
	}

	thrBefore := s.M.C.Rules[0].Preds[0].Threshold
	statsBefore := s.M.Stats
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SweepThresholdParallelCtx(cancelled, 0, 0, thresholds, 3); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.M.C.Rules[0].Preds[0].Threshold != thrBefore {
		t.Fatal("cancelled sweep moved a live threshold")
	}
	if s.M.Stats != statsBefore {
		t.Fatal("cancelled sweep added stats")
	}
	mustVerify(t, s, "after cancelled sweep")
}

// Session.Run uses the worker count configured through core options.
func TestSessionRunUsesConfiguredWorkers(t *testing.T) {
	a, b, pairs := fixture(t)
	s := buildSession(t, a, b, pairs, core.WithWorkers(0)) // 0 = GOMAXPROCS
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mustVerify(t, s, "after Run with GOMAXPROCS workers")

	ref := buildSession(t, a, b, pairs)
	ref.RunFull()
	if s.MatchCount() != ref.MatchCount() {
		t.Fatalf("Run matches %d, serial %d", s.MatchCount(), ref.MatchCount())
	}
	if !s.St.Equal(ref.St) {
		t.Fatal("Run state differs from serial materialization")
	}
}
