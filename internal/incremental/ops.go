package incremental

import (
	"fmt"

	"rulematch/internal/bitmap"
	"rulematch/internal/core"
	"rulematch/internal/rule"
)

// owner returns the index of the rule that matched pair pi, or -1.
// Ownership is tracked lazily: built on first use after RunFull and
// updated by every operation.
func (s *Session) ownerOf(pi int) int {
	s.ensureOwners()
	return int(s.owners[pi])
}

func (s *Session) ensureOwners() {
	if s.owners != nil {
		return
	}
	s.owners = make([]int32, len(s.M.Pairs))
	for i := range s.owners {
		s.owners[i] = -1
	}
	for ri := range s.St.RuleTrue {
		ri := ri
		s.St.RuleTrue[ri].ForEach(func(pi int) bool {
			s.owners[pi] = int32(ri)
			return true
		})
	}
}

func (s *Session) setOwner(pi, ri int) {
	s.ensureOwners()
	s.owners[pi] = int32(ri)
}

// AddPredicate appends predicate p to rule ri and incrementally updates
// the match result (Algorithm 7): only pairs previously matched *by*
// rule ri are re-examined; those that now fail are re-evaluated against
// the rules after ri.
func (s *Session) AddPredicate(ri int, p rule.Predicate) error {
	if err := s.checkState(); err != nil {
		return err
	}
	if err := s.checkRule(ri); err != nil {
		return err
	}
	cp, err := s.bindPredicate(p)
	if err != nil {
		return err
	}
	before := s.M.Stats
	r := &s.M.C.Rules[ri]
	r.Preds = append(r.Preds, cp)
	pj := len(r.Preds) - 1
	s.St.PredFalse[ri] = append(s.St.PredFalse[ri], bitmap.New(len(s.M.Pairs)))

	examined := 0
	// Live NextSet iteration is safe: the loop body only clears the
	// *current* bit of RuleTrue[ri] (never a later one) and reEvalAfter
	// writes to other rules' bitmaps.
	owned := s.St.RuleTrue[ri]
	for pi := owned.NextSet(0); pi >= 0; pi = owned.NextSet(pi + 1) {
		examined++
		v := s.M.FeatureValue(cp.Feat, pi)
		s.M.Stats.PredEvals++
		if cp.Eval(v) {
			continue
		}
		s.St.PredFalse[ri][pj].Set(pi)
		s.St.RuleTrue[ri].Clear(pi)
		s.St.Matched.Clear(pi)
		s.setOwner(pi, -1)
		if s.reEvalAfter(ri, pi) {
			s.setOwner(pi, s.findOwnerAfter(ri, pi))
		}
	}
	s.LastOp = OpReport{Op: "add_predicate", PairsExamined: examined, Stats: diffStats(before, s.M.Stats)}
	return nil
}

// findOwnerAfter locates the rule (after ri) whose RuleTrue was just set
// for pi by reEvalAfter.
func (s *Session) findOwnerAfter(ri, pi int) int {
	for rj := ri + 1; rj < len(s.St.RuleTrue); rj++ {
		if s.St.RuleTrue[rj].Get(pi) {
			return rj
		}
	}
	return -1
}

// TightenPredicate makes predicate pj of rule ri stricter by moving its
// threshold (Algorithm 7's second guise: a stricter predicate is an
// added constraint). For >=/> predicates the threshold must increase,
// for <=/< it must decrease.
func (s *Session) TightenPredicate(ri, pj int, newThreshold float64) error {
	if err := s.checkState(); err != nil {
		return err
	}
	if err := s.checkPred(ri, pj); err != nil {
		return err
	}
	p := &s.M.C.Rules[ri].Preds[pj]
	if err := checkDirection(p, newThreshold, true); err != nil {
		return err
	}
	before := s.M.Stats
	p.Threshold = newThreshold

	examined := 0
	// Safe live iteration: only the current bit is ever cleared (see
	// AddPredicate).
	owned := s.St.RuleTrue[ri]
	for pi := owned.NextSet(0); pi >= 0; pi = owned.NextSet(pi + 1) {
		examined++
		v := s.M.FeatureValue(p.Feat, pi)
		s.M.Stats.PredEvals++
		if p.Eval(v) {
			continue
		}
		s.St.PredFalse[ri][pj].Set(pi)
		s.St.RuleTrue[ri].Clear(pi)
		s.St.Matched.Clear(pi)
		s.setOwner(pi, -1)
		if s.reEvalAfter(ri, pi) {
			s.setOwner(pi, s.findOwnerAfter(ri, pi))
		}
	}
	s.LastOp = OpReport{Op: "tighten_predicate", PairsExamined: examined, Stats: diffStats(before, s.M.Stats)}
	return nil
}

// RelaxPredicate makes predicate pj of rule ri less strict (Algorithm
// 8). Pairs for which the predicate was recorded false are re-examined:
// unmatched ones may now match through rule ri; matched ones owned by a
// later rule may migrate ownership to ri to preserve the first-true-rule
// invariant.
func (s *Session) RelaxPredicate(ri, pj int, newThreshold float64) error {
	if err := s.checkState(); err != nil {
		return err
	}
	if err := s.checkPred(ri, pj); err != nil {
		return err
	}
	p := &s.M.C.Rules[ri].Preds[pj]
	if err := checkDirection(p, newThreshold, false); err != nil {
		return err
	}
	before := s.M.Stats
	p.Threshold = newThreshold

	examined, moves := 0, 0
	// Safe live iteration: the body clears only the current bit of this
	// false set (evalRuleRecordFalse touches pair pi alone, and the
	// relaxed predicate evaluates true for it, so the bit stays clear).
	falseSet := s.St.PredFalse[ri][pj]
	for pi := falseSet.NextSet(0); pi >= 0; pi = falseSet.NextSet(pi + 1) {
		examined++
		v := s.M.FeatureValue(p.Feat, pi)
		s.M.Stats.PredEvals++
		if !p.Eval(v) {
			continue // still false; the recorded bit stays sound
		}
		s.St.PredFalse[ri][pj].Clear(pi)
		if !s.St.Matched.Get(pi) {
			// Previously unmatched: rule ri may now fire. All predicates
			// must be re-checked (footnote 2: check-cache-first means the
			// stored exit point is order-dependent).
			if s.evalRuleRecordFalse(ri, pi) {
				s.St.RuleTrue[ri].Set(pi)
				s.St.Matched.Set(pi)
				s.setOwner(pi, ri)
			}
			continue
		}
		// Matched pair: if owned by a later rule and ri now fires,
		// ownership migrates to keep invariant 1 sound.
		if owner := s.ownerOf(pi); owner > ri {
			if s.evalRuleRecordFalse(ri, pi) {
				s.St.RuleTrue[owner].Clear(pi)
				s.St.RuleTrue[ri].Set(pi)
				s.setOwner(pi, ri)
				moves++
			}
		}
	}
	s.LastOp = OpReport{Op: "relax_predicate", PairsExamined: examined, Stats: diffStats(before, s.M.Stats), OwnershipMoves: moves}
	return nil
}

// RemovePredicate deletes predicate pj from rule ri (Algorithm 8 with
// an always-true replacement): pairs whose recorded failure was this
// predicate are re-examined against the rest of the rule.
func (s *Session) RemovePredicate(ri, pj int) error {
	if err := s.checkState(); err != nil {
		return err
	}
	if err := s.checkPred(ri, pj); err != nil {
		return err
	}
	r := &s.M.C.Rules[ri]
	if len(r.Preds) == 1 {
		return fmt.Errorf("incremental: cannot remove the only predicate of rule %q; remove the rule instead", r.Name)
	}
	before := s.M.Stats
	// Capture the spliced-out false set before removing it from the
	// state: the loop below iterates it live while evalRuleRecordFalse
	// mutates only the *remaining* predicates' bitmaps.
	falseSet := s.St.PredFalse[ri][pj]
	r.Preds = append(r.Preds[:pj], r.Preds[pj+1:]...)
	s.St.PredFalse[ri] = append(s.St.PredFalse[ri][:pj], s.St.PredFalse[ri][pj+1:]...)

	examined, moves := 0, 0
	for pi := falseSet.NextSet(0); pi >= 0; pi = falseSet.NextSet(pi + 1) {
		examined++
		if !s.St.Matched.Get(pi) {
			if s.evalRuleRecordFalse(ri, pi) {
				s.St.RuleTrue[ri].Set(pi)
				s.St.Matched.Set(pi)
				s.setOwner(pi, ri)
			}
			continue
		}
		if owner := s.ownerOf(pi); owner > ri {
			if s.evalRuleRecordFalse(ri, pi) {
				s.St.RuleTrue[owner].Clear(pi)
				s.St.RuleTrue[ri].Set(pi)
				s.setOwner(pi, ri)
				moves++
			}
		}
	}
	s.LastOp = OpReport{Op: "remove_predicate", PairsExamined: examined, Stats: diffStats(before, s.M.Stats), OwnershipMoves: moves}
	return nil
}

// RemoveRule deletes rule ri (Algorithm 9): only pairs matched by ri are
// re-evaluated, and only against the rules that followed it.
func (s *Session) RemoveRule(ri int) error {
	if err := s.checkState(); err != nil {
		return err
	}
	if err := s.checkRule(ri); err != nil {
		return err
	}
	before := s.M.Stats
	// Capture the removed rule's match set before splicing it out of the
	// state; reEvalAfter writes only to the surviving rules' bitmaps, so
	// live NextSet iteration is safe.
	orphans := s.St.RuleTrue[ri]
	s.M.C.RemoveRule(ri)
	s.St.RuleTrue = append(s.St.RuleTrue[:ri], s.St.RuleTrue[ri+1:]...)
	s.St.PredFalse = append(s.St.PredFalse[:ri], s.St.PredFalse[ri+1:]...)
	s.ensureOwners()
	for pi := range s.owners {
		if int(s.owners[pi]) > ri {
			s.owners[pi]--
		}
	}
	examined := 0
	for pi := orphans.NextSet(0); pi >= 0; pi = orphans.NextSet(pi + 1) {
		examined++
		s.St.Matched.Clear(pi)
		s.setOwner(pi, -1)
		// Rules formerly after ri now start at index ri.
		if s.reEvalAfter(ri-1, pi) {
			s.setOwner(pi, s.findOwnerAfter(ri-1, pi))
		}
	}
	s.LastOp = OpReport{Op: "remove_rule", PairsExamined: examined, Stats: diffStats(before, s.M.Stats)}
	return nil
}

// AddRule appends a new rule (Algorithm 10): only currently unmatched
// pairs are evaluated, and only against the new rule.
func (s *Session) AddRule(r rule.Rule) error {
	if err := s.checkState(); err != nil {
		return err
	}
	cr, err := s.M.C.CompileRule(r)
	if err != nil {
		return err
	}
	before := s.M.Stats
	s.M.C.Rules = append(s.M.C.Rules, cr)
	ri := len(s.M.C.Rules) - 1
	s.St.RuleTrue = append(s.St.RuleTrue, bitmap.New(len(s.M.Pairs)))
	pf := make([]*bitmap.Bits, len(cr.Preds))
	for i := range pf {
		pf[i] = bitmap.New(len(s.M.Pairs))
	}
	s.St.PredFalse = append(s.St.PredFalse, pf)

	examined := 0
	for pi := range s.M.Pairs {
		if s.St.Matched.Get(pi) || (s.dead != nil && s.dead.Get(pi)) {
			continue
		}
		examined++
		if s.M.EvalRule(ri, pi, s.St) {
			s.St.RuleTrue[ri].Set(pi)
			s.St.Matched.Set(pi)
			s.setOwner(pi, ri)
		}
	}
	s.LastOp = OpReport{Op: "add_rule", PairsExamined: examined, Stats: diffStats(before, s.M.Stats)}
	return nil
}

// SetThreshold changes the threshold of predicate pj of rule ri,
// dispatching to TightenPredicate or RelaxPredicate based on the
// direction of the change. A no-op change returns nil immediately.
func (s *Session) SetThreshold(ri, pj int, newThreshold float64) error {
	if err := s.checkState(); err != nil {
		return err
	}
	if err := s.checkPred(ri, pj); err != nil {
		return err
	}
	p := &s.M.C.Rules[ri].Preds[pj]
	if p.Threshold == newThreshold {
		s.LastOp = OpReport{Op: "set_threshold_noop"}
		return nil
	}
	stricter := newThreshold > p.Threshold
	if p.Op.Upper() {
		stricter = !stricter
	}
	if p.Op == rule.Eq {
		return fmt.Errorf("incremental: cannot move the threshold of an equality predicate incrementally; remove and re-add it")
	}
	if stricter {
		return s.TightenPredicate(ri, pj, newThreshold)
	}
	return s.RelaxPredicate(ri, pj, newThreshold)
}

func (s *Session) checkPred(ri, pj int) error {
	if err := s.checkRule(ri); err != nil {
		return err
	}
	if pj < 0 || pj >= len(s.M.C.Rules[ri].Preds) {
		return fmt.Errorf("incremental: predicate index %d out of range [0,%d) in rule %q",
			pj, len(s.M.C.Rules[ri].Preds), s.M.C.Rules[ri].Name)
	}
	return nil
}

// checkDirection validates that the threshold move matches the intended
// strictness direction for the predicate's operator.
func checkDirection(p *core.CompiledPred, newThreshold float64, tighten bool) error {
	if p.Op == rule.Eq {
		return fmt.Errorf("incremental: equality predicates cannot be tightened or relaxed")
	}
	raising := newThreshold > p.Threshold
	stricter := raising != p.Op.Upper()
	if newThreshold == p.Threshold {
		return fmt.Errorf("incremental: threshold unchanged (%g)", newThreshold)
	}
	if stricter != tighten {
		verb := "tighten"
		if !tighten {
			verb = "relax"
		}
		return fmt.Errorf("incremental: moving %s threshold from %g to %g does not %s it",
			p.Op, p.Threshold, newThreshold, verb)
	}
	return nil
}
