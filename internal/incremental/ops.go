package incremental

import (
	"fmt"

	"rulematch/internal/bitmap"
	"rulematch/internal/core"
	"rulematch/internal/rule"
)

// owner returns the index of the rule that matched pair pi, or -1.
// Ownership is tracked lazily: built on first use after RunFull and
// updated by every operation.
func (s *Session) ownerOf(pi int) int {
	s.ensureOwners()
	return int(s.owners[pi])
}

func (s *Session) ensureOwners() {
	if s.owners != nil {
		return
	}
	s.owners = make([]int32, len(s.M.Pairs))
	for i := range s.owners {
		s.owners[i] = -1
	}
	for ri := range s.St.RuleTrue {
		ri := ri
		s.St.RuleTrue[ri].ForEach(func(pi int) bool {
			s.owners[pi] = int32(ri)
			return true
		})
	}
}

func (s *Session) setOwner(pi, ri int) {
	s.ensureOwners()
	s.owners[pi] = int32(ri)
}

// AddPredicate adds predicate p to rule ri and incrementally updates
// the match result (Algorithm 7): only pairs previously matched *by*
// rule ri are re-examined; those that now fail are re-evaluated against
// the rules after ri.
//
// The compiled rule stays in canonical form (Lemma 2 per-feature
// groups): a predicate over a feature the rule already bounds is merged
// into the existing group the way Canonicalize would — the strictest
// bound wins, a redundant bound is a no-op (LastOp "add_predicate_noop"),
// and a contradictory bound is rejected with rule.ErrAlwaysFalse.
// Keeping the live predicate list a Canonicalize fixed point matters
// for durability: persist.Load re-parses the printed function through
// Canonicalize and maps the recorded per-predicate bitmaps
// positionally, so a duplicate-feature predicate appended verbatim
// would make the session's own snapshot unloadable.
func (s *Session) AddPredicate(ri int, p rule.Predicate) error {
	if err := s.checkState(); err != nil {
		return err
	}
	if err := s.checkRule(ri); err != nil {
		return err
	}
	cp, err := s.bindPredicate(p)
	if err != nil {
		return err
	}
	r := &s.M.C.Rules[ri]

	// Locate the rule's existing bounds on this feature (canonical form:
	// at most one lower and one upper — adjacent — or a single equality).
	li, ui, ei := -1, -1, -1
	for qj := range r.Preds {
		if r.Preds[qj].Feat != cp.Feat {
			continue
		}
		switch r.Preds[qj].Op {
		case rule.Eq:
			ei = qj
		case rule.Le, rule.Lt:
			ui = qj
		default:
			li = qj
		}
	}
	if li < 0 && ui < 0 && ei < 0 {
		// First bound on this feature: a fresh group appended at the end
		// is canonical (groups keep first-appearance order).
		return s.insertPredicate(ri, len(r.Preds), cp)
	}

	asPred := func(q core.CompiledPred) rule.Predicate {
		return rule.Predicate{Feature: p.Feature, Op: q.Op, Threshold: q.Threshold}
	}
	noop := func() error {
		s.LastOp = OpReport{Op: "add_predicate_noop"}
		return nil
	}
	contradiction := func(other core.CompiledPred) error {
		return fmt.Errorf("incremental: adding %s to rule %q contradicts %s: %w",
			p, r.Name, asPred(other), rule.ErrAlwaysFalse)
	}

	if ei >= 0 {
		// The group is an equality; any consistent add is subsumed by it.
		if p.Op == rule.Eq && p.Threshold == r.Preds[ei].Threshold {
			return noop()
		}
		if p.Op != rule.Eq && p.Eval(r.Preds[ei].Threshold) {
			return noop()
		}
		return contradiction(r.Preds[ei])
	}
	if p.Op == rule.Eq {
		// Replacing a bound group by an equality would delete predicates
		// and their recorded state; keep that edit explicit.
		return fmt.Errorf("incremental: rule %q already bounds %s; remove the bounds before adding an equality predicate",
			r.Name, p.Feature.Key())
	}

	if p.Op.Upper() {
		if li >= 0 && rule.BoundsContradict(asPred(r.Preds[li]), p) {
			return contradiction(r.Preds[li])
		}
		if ui >= 0 {
			if !rule.StricterUpper(p, asPred(r.Preds[ui])) {
				return noop()
			}
			return s.mergePredicate(ri, ui, cp)
		}
		// New upper bound: canonical position is right after the group's
		// lower bound.
		return s.insertPredicate(ri, li+1, cp)
	}
	if ui >= 0 && rule.BoundsContradict(p, asPred(r.Preds[ui])) {
		return contradiction(r.Preds[ui])
	}
	if li >= 0 {
		if !rule.StricterLower(p, asPred(r.Preds[li])) {
			return noop()
		}
		return s.mergePredicate(ri, li, cp)
	}
	// New lower bound: canonical position is right before the group's
	// upper bound.
	return s.insertPredicate(ri, ui, cp)
}

// insertPredicate splices cp (with a fresh false bitmap) into rule ri
// at predicate position pos and constrains the rule's current matches.
func (s *Session) insertPredicate(ri, pos int, cp core.CompiledPred) error {
	before := s.M.Stats
	r := &s.M.C.Rules[ri]
	r.Preds = append(r.Preds, core.CompiledPred{})
	copy(r.Preds[pos+1:], r.Preds[pos:])
	r.Preds[pos] = cp
	pf := append(s.St.PredFalse[ri], nil)
	copy(pf[pos+1:], pf[pos:])
	pf[pos] = bitmap.New(len(s.M.Pairs))
	s.St.PredFalse[ri] = pf
	examined := s.constrainScan(ri, pos)
	s.LastOp = OpReport{Op: "add_predicate", PairsExamined: examined, Stats: diffStats(before, s.M.Stats)}
	return nil
}

// mergePredicate replaces predicate pj of rule ri by the strictly
// stricter same-direction bound cp and constrains the rule's current
// matches. The recorded false set is kept: every pair that failed the
// old bound fails the stricter one too.
func (s *Session) mergePredicate(ri, pj int, cp core.CompiledPred) error {
	before := s.M.Stats
	s.M.C.Rules[ri].Preds[pj] = cp
	examined := s.constrainScan(ri, pj)
	s.LastOp = OpReport{Op: "add_predicate", PairsExamined: examined, Stats: diffStats(before, s.M.Stats)}
	return nil
}

// constrainScan re-examines the pairs currently matched by rule ri
// against predicate pj (just added or made stricter): failures are
// recorded in the predicate's false set, the pair falls out of the
// rule's match set and is re-evaluated against the rules after ri.
// Live NextSet iteration is safe: the loop body only clears the
// *current* bit of RuleTrue[ri] (never a later one) and reEvalAfter
// writes to other rules' bitmaps.
func (s *Session) constrainScan(ri, pj int) int {
	cp := s.M.C.Rules[ri].Preds[pj]
	examined := 0
	owned := s.St.RuleTrue[ri]
	for pi := owned.NextSet(0); pi >= 0; pi = owned.NextSet(pi + 1) {
		examined++
		v := s.M.FeatureValue(cp.Feat, pi)
		s.M.Stats.PredEvals++
		if cp.Eval(v) {
			continue
		}
		s.St.PredFalse[ri][pj].Set(pi)
		s.St.RuleTrue[ri].Clear(pi)
		s.St.Matched.Clear(pi)
		s.setOwner(pi, -1)
		if s.reEvalAfter(ri, pi) {
			s.setOwner(pi, s.findOwnerAfter(ri, pi))
		}
	}
	return examined
}

// findOwnerAfter locates the rule (after ri) whose RuleTrue was just set
// for pi by reEvalAfter.
func (s *Session) findOwnerAfter(ri, pi int) int {
	for rj := ri + 1; rj < len(s.St.RuleTrue); rj++ {
		if s.St.RuleTrue[rj].Get(pi) {
			return rj
		}
	}
	return -1
}

// TightenPredicate makes predicate pj of rule ri stricter by moving its
// threshold (Algorithm 7's second guise: a stricter predicate is an
// added constraint). For >=/> predicates the threshold must increase,
// for <=/< it must decrease.
func (s *Session) TightenPredicate(ri, pj int, newThreshold float64) error {
	if err := s.checkState(); err != nil {
		return err
	}
	if err := s.checkPred(ri, pj); err != nil {
		return err
	}
	p := &s.M.C.Rules[ri].Preds[pj]
	if err := checkDirection(p, newThreshold, true); err != nil {
		return err
	}
	before := s.M.Stats
	p.Threshold = newThreshold

	examined := s.constrainScan(ri, pj)
	s.LastOp = OpReport{Op: "tighten_predicate", PairsExamined: examined, Stats: diffStats(before, s.M.Stats)}
	return nil
}

// RelaxPredicate makes predicate pj of rule ri less strict (Algorithm
// 8). Pairs for which the predicate was recorded false are re-examined:
// unmatched ones may now match through rule ri; matched ones owned by a
// later rule may migrate ownership to ri to preserve the first-true-rule
// invariant.
func (s *Session) RelaxPredicate(ri, pj int, newThreshold float64) error {
	if err := s.checkState(); err != nil {
		return err
	}
	if err := s.checkPred(ri, pj); err != nil {
		return err
	}
	p := &s.M.C.Rules[ri].Preds[pj]
	if err := checkDirection(p, newThreshold, false); err != nil {
		return err
	}
	before := s.M.Stats
	p.Threshold = newThreshold

	examined, moves := 0, 0
	// Safe live iteration: the body clears only the current bit of this
	// false set (evalRuleRecordFalse touches pair pi alone, and the
	// relaxed predicate evaluates true for it, so the bit stays clear).
	falseSet := s.St.PredFalse[ri][pj]
	for pi := falseSet.NextSet(0); pi >= 0; pi = falseSet.NextSet(pi + 1) {
		examined++
		v := s.M.FeatureValue(p.Feat, pi)
		s.M.Stats.PredEvals++
		if !p.Eval(v) {
			continue // still false; the recorded bit stays sound
		}
		s.St.PredFalse[ri][pj].Clear(pi)
		if !s.St.Matched.Get(pi) {
			// Previously unmatched: rule ri may now fire. All predicates
			// must be re-checked (footnote 2: check-cache-first means the
			// stored exit point is order-dependent).
			if s.evalRuleRecordFalse(ri, pi) {
				s.St.RuleTrue[ri].Set(pi)
				s.St.Matched.Set(pi)
				s.setOwner(pi, ri)
			}
			continue
		}
		// Matched pair: if owned by a later rule and ri now fires,
		// ownership migrates to keep invariant 1 sound.
		if owner := s.ownerOf(pi); owner > ri {
			if s.evalRuleRecordFalse(ri, pi) {
				s.St.RuleTrue[owner].Clear(pi)
				s.St.RuleTrue[ri].Set(pi)
				s.setOwner(pi, ri)
				moves++
			}
		}
	}
	s.LastOp = OpReport{Op: "relax_predicate", PairsExamined: examined, Stats: diffStats(before, s.M.Stats), OwnershipMoves: moves}
	return nil
}

// RemovePredicate deletes predicate pj from rule ri (Algorithm 8 with
// an always-true replacement): pairs whose recorded failure was this
// predicate are re-examined against the rest of the rule.
func (s *Session) RemovePredicate(ri, pj int) error {
	if err := s.checkState(); err != nil {
		return err
	}
	if err := s.checkPred(ri, pj); err != nil {
		return err
	}
	r := &s.M.C.Rules[ri]
	if len(r.Preds) == 1 {
		return fmt.Errorf("incremental: cannot remove the only predicate of rule %q; remove the rule instead", r.Name)
	}
	before := s.M.Stats
	// Capture the spliced-out false set before removing it from the
	// state: the loop below iterates it live while evalRuleRecordFalse
	// mutates only the *remaining* predicates' bitmaps.
	falseSet := s.St.PredFalse[ri][pj]
	r.Preds = append(r.Preds[:pj], r.Preds[pj+1:]...)
	s.St.PredFalse[ri] = append(s.St.PredFalse[ri][:pj], s.St.PredFalse[ri][pj+1:]...)

	examined, moves := 0, 0
	for pi := falseSet.NextSet(0); pi >= 0; pi = falseSet.NextSet(pi + 1) {
		examined++
		if !s.St.Matched.Get(pi) {
			if s.evalRuleRecordFalse(ri, pi) {
				s.St.RuleTrue[ri].Set(pi)
				s.St.Matched.Set(pi)
				s.setOwner(pi, ri)
			}
			continue
		}
		if owner := s.ownerOf(pi); owner > ri {
			if s.evalRuleRecordFalse(ri, pi) {
				s.St.RuleTrue[owner].Clear(pi)
				s.St.RuleTrue[ri].Set(pi)
				s.setOwner(pi, ri)
				moves++
			}
		}
	}
	s.LastOp = OpReport{Op: "remove_predicate", PairsExamined: examined, Stats: diffStats(before, s.M.Stats), OwnershipMoves: moves}
	return nil
}

// RemoveRule deletes rule ri (Algorithm 9): only pairs matched by ri are
// re-evaluated, and only against the rules that followed it.
func (s *Session) RemoveRule(ri int) error {
	if err := s.checkState(); err != nil {
		return err
	}
	if err := s.checkRule(ri); err != nil {
		return err
	}
	before := s.M.Stats
	// Capture the removed rule's match set before splicing it out of the
	// state; reEvalAfter writes only to the surviving rules' bitmaps, so
	// live NextSet iteration is safe.
	orphans := s.St.RuleTrue[ri]
	s.M.C.RemoveRule(ri)
	s.St.RuleTrue = append(s.St.RuleTrue[:ri], s.St.RuleTrue[ri+1:]...)
	s.St.PredFalse = append(s.St.PredFalse[:ri], s.St.PredFalse[ri+1:]...)
	s.ensureOwners()
	for pi := range s.owners {
		if int(s.owners[pi]) > ri {
			s.owners[pi]--
		}
	}
	examined := 0
	for pi := orphans.NextSet(0); pi >= 0; pi = orphans.NextSet(pi + 1) {
		examined++
		s.St.Matched.Clear(pi)
		s.setOwner(pi, -1)
		// Rules formerly after ri now start at index ri.
		if s.reEvalAfter(ri-1, pi) {
			s.setOwner(pi, s.findOwnerAfter(ri-1, pi))
		}
	}
	s.LastOp = OpReport{Op: "remove_rule", PairsExamined: examined, Stats: diffStats(before, s.M.Stats)}
	return nil
}

// AddRule appends a new rule (Algorithm 10): only currently unmatched
// pairs are evaluated, and only against the new rule.
func (s *Session) AddRule(r rule.Rule) error {
	if err := s.checkState(); err != nil {
		return err
	}
	cr, err := s.M.C.CompileRule(r)
	if err != nil {
		return err
	}
	before := s.M.Stats
	s.M.C.Rules = append(s.M.C.Rules, cr)
	ri := len(s.M.C.Rules) - 1
	s.St.RuleTrue = append(s.St.RuleTrue, bitmap.New(len(s.M.Pairs)))
	pf := make([]*bitmap.Bits, len(cr.Preds))
	for i := range pf {
		pf[i] = bitmap.New(len(s.M.Pairs))
	}
	s.St.PredFalse = append(s.St.PredFalse, pf)

	examined := 0
	for pi := range s.M.Pairs {
		if s.St.Matched.Get(pi) || (s.dead != nil && s.dead.Get(pi)) {
			continue
		}
		examined++
		if s.M.EvalRule(ri, pi, s.St) {
			s.St.RuleTrue[ri].Set(pi)
			s.St.Matched.Set(pi)
			s.setOwner(pi, ri)
		}
	}
	s.LastOp = OpReport{Op: "add_rule", PairsExamined: examined, Stats: diffStats(before, s.M.Stats)}
	return nil
}

// SetThreshold changes the threshold of predicate pj of rule ri,
// dispatching to TightenPredicate or RelaxPredicate based on the
// direction of the change. A no-op change returns nil immediately.
func (s *Session) SetThreshold(ri, pj int, newThreshold float64) error {
	if err := s.checkState(); err != nil {
		return err
	}
	if err := s.checkPred(ri, pj); err != nil {
		return err
	}
	p := &s.M.C.Rules[ri].Preds[pj]
	if p.Threshold == newThreshold {
		s.LastOp = OpReport{Op: "set_threshold_noop"}
		return nil
	}
	stricter := newThreshold > p.Threshold
	if p.Op.Upper() {
		stricter = !stricter
	}
	if p.Op == rule.Eq {
		return fmt.Errorf("incremental: cannot move the threshold of an equality predicate incrementally; remove and re-add it")
	}
	if stricter {
		return s.TightenPredicate(ri, pj, newThreshold)
	}
	return s.RelaxPredicate(ri, pj, newThreshold)
}

func (s *Session) checkPred(ri, pj int) error {
	if err := s.checkRule(ri); err != nil {
		return err
	}
	if pj < 0 || pj >= len(s.M.C.Rules[ri].Preds) {
		return fmt.Errorf("incremental: predicate index %d out of range [0,%d) in rule %q",
			pj, len(s.M.C.Rules[ri].Preds), s.M.C.Rules[ri].Name)
	}
	return nil
}

// checkDirection validates that the threshold move matches the intended
// strictness direction for the predicate's operator.
func checkDirection(p *core.CompiledPred, newThreshold float64, tighten bool) error {
	if p.Op == rule.Eq {
		return fmt.Errorf("incremental: equality predicates cannot be tightened or relaxed")
	}
	raising := newThreshold > p.Threshold
	stricter := raising != p.Op.Upper()
	if newThreshold == p.Threshold {
		return fmt.Errorf("incremental: threshold unchanged (%g)", newThreshold)
	}
	if stricter != tighten {
		verb := "tighten"
		if !tighten {
			verb = "relax"
		}
		return fmt.Errorf("incremental: moving %s threshold from %g to %g does not %s it",
			p.Op, p.Threshold, newThreshold, verb)
	}
	return nil
}
