package incremental

import (
	"errors"
	"testing"

	"rulematch/internal/rule"
)

// mustParsePred is a test shorthand for rule.ParsePredicate.
func mustParsePred(t *testing.T, src string) rule.Predicate {
	t.Helper()
	p, err := rule.ParsePredicate(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// assertCanonical checks the live compiled function is a fixed point of
// rule.Canonicalize — the invariant persist.Load relies on when it maps
// the per-predicate bitmaps of a snapshot positionally.
func assertCanonical(t *testing.T, s *Session, context string) {
	t.Helper()
	f := s.M.C.Function()
	for _, r := range f.Rules {
		canon, err := rule.Canonicalize(r)
		if err != nil {
			t.Fatalf("%s: live rule %q does not canonicalize: %v", context, r.Name, err)
		}
		if len(canon.Preds) != len(r.Preds) {
			t.Fatalf("%s: rule %q has %d predicates, canonical form %d",
				context, r.Name, len(r.Preds), len(canon.Preds))
		}
		for i := range r.Preds {
			if canon.Preds[i] != r.Preds[i] {
				t.Fatalf("%s: rule %q predicate %d = %s, canonical %s",
					context, r.Name, i, r.Preds[i], canon.Preds[i])
			}
		}
	}
}

// TestAddPredicateMergesStricterLower: a second lower bound on the same
// feature replaces the existing one when stricter, instead of growing
// the predicate list.
func TestAddPredicateMergesStricterLower(t *testing.T) {
	s := newSession(t, baseFunc)
	r := &s.M.C.Rules[2] // r3: trigram(name, name) >= 0.8
	if len(r.Preds) != 1 {
		t.Fatalf("fixture rule has %d predicates", len(r.Preds))
	}
	if err := s.AddPredicate(2, mustParsePred(t, "trigram(name, name) >= 0.9")); err != nil {
		t.Fatal(err)
	}
	if len(r.Preds) != 1 {
		t.Fatalf("merge grew the predicate list to %d", len(r.Preds))
	}
	if r.Preds[0].Threshold != 0.9 {
		t.Fatalf("threshold = %g, want 0.9", r.Preds[0].Threshold)
	}
	if s.LastOp.Op != "add_predicate" {
		t.Errorf("op = %q", s.LastOp.Op)
	}
	mustVerify(t, s, "after stricter-lower merge")
	assertCanonical(t, s, "after stricter-lower merge")

	// A weaker bound on the same feature is a no-op.
	st := s.M.Stats
	if err := s.AddPredicate(2, mustParsePred(t, "trigram(name, name) >= 0.85")); err != nil {
		t.Fatal(err)
	}
	if s.LastOp.Op != "add_predicate_noop" {
		t.Errorf("op = %q, want add_predicate_noop", s.LastOp.Op)
	}
	if r.Preds[0].Threshold != 0.9 || len(r.Preds) != 1 {
		t.Fatalf("no-op changed the rule: %v", r.Preds)
	}
	if s.M.Stats != st {
		t.Error("no-op did work")
	}
	mustVerify(t, s, "after redundant add")
}

// TestAddPredicateInsertsOppositeBound: an upper bound on a feature
// that only has a lower bound joins the group in canonical order
// (lower first), and vice versa.
func TestAddPredicateInsertsOppositeBound(t *testing.T) {
	s := newSession(t, baseFunc)
	r := &s.M.C.Rules[2] // r3: trigram(name, name) >= 0.8
	if err := s.AddPredicate(2, mustParsePred(t, "trigram(name, name) <= 0.95")); err != nil {
		t.Fatal(err)
	}
	if len(r.Preds) != 2 || r.Preds[0].Op != rule.Ge || r.Preds[1].Op != rule.Le {
		t.Fatalf("group not canonical after upper insert: %v", r.Preds)
	}
	mustVerify(t, s, "after upper insert")
	assertCanonical(t, s, "after upper insert")

	// Stricter upper merges in place.
	if err := s.AddPredicate(2, mustParsePred(t, "trigram(name, name) < 0.93")); err != nil {
		t.Fatal(err)
	}
	if len(r.Preds) != 2 || r.Preds[1].Op != rule.Lt || r.Preds[1].Threshold != 0.93 {
		t.Fatalf("stricter upper did not merge: %v", r.Preds)
	}
	mustVerify(t, s, "after stricter-upper merge")
	assertCanonical(t, s, "after stricter-upper merge")

	// A lower bound contradicting the upper is rejected.
	err := s.AddPredicate(2, mustParsePred(t, "trigram(name, name) >= 0.95"))
	if !errors.Is(err, rule.ErrAlwaysFalse) {
		t.Fatalf("contradictory add: err = %v, want ErrAlwaysFalse", err)
	}
	mustVerify(t, s, "after rejected add")

	// Lower-before-upper position on a feature seen upper-first.
	if err := s.AddPredicate(0, mustParsePred(t, "soundex(name, name) <= 0.9")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPredicate(0, mustParsePred(t, "soundex(name, name) >= 0.1")); err != nil {
		t.Fatal(err)
	}
	r0 := &s.M.C.Rules[0]
	n := len(r0.Preds)
	if r0.Preds[n-2].Op != rule.Ge || r0.Preds[n-1].Op != rule.Le {
		t.Fatalf("lower bound not inserted before upper: %v", r0.Preds)
	}
	mustVerify(t, s, "after lower insert before upper")
	assertCanonical(t, s, "after lower insert before upper")
}

// TestAddPredicateEqualityGroups: equality predicates subsume
// consistent bounds and reject inconsistent ones.
func TestAddPredicateEqualityGroups(t *testing.T) {
	s := newSession(t, baseFunc)
	if err := s.AddRule(mustParseRule(t, "req: exact_match(city, city) == 1")); err != nil {
		t.Fatal(err)
	}
	ri := len(s.M.C.Rules) - 1

	// A bound satisfied at the equality value is a no-op.
	if err := s.AddPredicate(ri, mustParsePred(t, "exact_match(city, city) >= 0.5")); err != nil {
		t.Fatal(err)
	}
	if s.LastOp.Op != "add_predicate_noop" {
		t.Errorf("op = %q, want add_predicate_noop", s.LastOp.Op)
	}
	// The same equality again is a no-op too.
	if err := s.AddPredicate(ri, mustParsePred(t, "exact_match(city, city) == 1")); err != nil {
		t.Fatal(err)
	}
	if s.LastOp.Op != "add_predicate_noop" {
		t.Errorf("op = %q, want add_predicate_noop", s.LastOp.Op)
	}
	// A bound excluded at the equality value is a contradiction.
	if err := s.AddPredicate(ri, mustParsePred(t, "exact_match(city, city) < 1")); !errors.Is(err, rule.ErrAlwaysFalse) {
		t.Fatalf("bound excluding the equality: err = %v, want ErrAlwaysFalse", err)
	}
	// A different equality is a contradiction.
	if err := s.AddPredicate(ri, mustParsePred(t, "exact_match(city, city) == 0")); !errors.Is(err, rule.ErrAlwaysFalse) {
		t.Fatalf("conflicting equality: err = %v, want ErrAlwaysFalse", err)
	}
	// An equality onto an existing bound group is refused outright.
	if err := s.AddPredicate(2, mustParsePred(t, "trigram(name, name) == 0.9")); err == nil {
		t.Fatal("equality onto a bounded feature accepted")
	}
	mustVerify(t, s, "after equality-group edits")
	assertCanonical(t, s, "after equality-group edits")
}

func mustParseRule(t *testing.T, src string) rule.Rule {
	t.Helper()
	r, err := rule.ParseRule(src)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
