package incremental

import (
	"context"
	"fmt"
	"sync"

	"rulematch/internal/bitmap"
	"rulematch/internal/core"
)

// SweepPoint is the outcome of evaluating the function with one
// candidate threshold substituted into a predicate.
type SweepPoint struct {
	Threshold float64
	Matched   *bitmap.Bits
}

// SweepThreshold evaluates the matching function once per candidate
// threshold for predicate pj of rule ri, without changing session
// state. Because every required feature is already memoized (or gets
// memoized on first touch), each sweep point costs only lookups — this
// is the kind of instant what-if exploration dynamic memoing exists
// for.
func (s *Session) SweepThreshold(ri, pj int, thresholds []float64) ([]SweepPoint, error) {
	if err := s.checkState(); err != nil {
		return nil, err
	}
	if err := s.checkPred(ri, pj); err != nil {
		return nil, err
	}
	p := &s.M.C.Rules[ri].Preds[pj]
	original := p.Threshold
	defer func() { p.Threshold = original }()

	out := make([]SweepPoint, 0, len(thresholds))
	for _, thr := range thresholds {
		p.Threshold = thr
		// Marks-only run on the configured engine with early exit and the
		// warm memo, recording no state (the sweep is a read-only
		// what-if). The batch engine scans each memo column once per
		// block, so a warm sweep point is a handful of bitmap kernels.
		bits := s.M.MatchBits()
		if s.dead != nil {
			bits.AndNot(s.dead)
		}
		out = append(out, SweepPoint{Threshold: thr, Matched: bits})
	}
	return out, nil
}

// SweepThresholdParallel is SweepThreshold sharded over workers
// goroutines (0 = GOMAXPROCS, 1 = the serial path): each worker
// evaluates every candidate threshold over a contiguous pair range on a
// private clone of the compiled function (core.Compiled.CloneForEval),
// reading the session memo through a range-offset overlay. Per-
// threshold match sets are stitched with word-level merges and are
// bit-identical to the serial sweep; feature values the workers had to
// compute are absorbed into the session memo afterwards, so the sweep
// leaves the memo at least as warm as the serial one would.
func (s *Session) SweepThresholdParallel(ri, pj int, thresholds []float64, workers int) ([]SweepPoint, error) {
	if core.NormalizeWorkers(workers) == 1 {
		return s.SweepThreshold(ri, pj, thresholds)
	}
	return s.SweepThresholdParallelCtx(context.Background(), ri, pj, thresholds, workers)
}

// SweepThresholdParallelCtx is the cancellable sweep the debug server
// uses: workers evaluate every candidate threshold over contiguous
// pair shards on private clones of the compiled function, checking ctx
// between threshold points. On cancellation it returns ctx's error and
// the session is left exactly as before the call — thresholds were
// only ever mutated on clones, no shard memo is absorbed and no stats
// are added — so a client timeout mid-sweep leaves the session valid.
// Unlike SweepThresholdParallel it never falls back to the serial
// in-place path, so it is cancellable even at worker count 1.
func (s *Session) SweepThresholdParallelCtx(ctx context.Context, ri, pj int, thresholds []float64, workers int) ([]SweepPoint, error) {
	workers = core.NormalizeWorkers(workers)
	if err := s.checkState(); err != nil {
		return nil, err
	}
	if err := s.checkPred(ri, pj); err != nil {
		return nil, err
	}
	n := len(s.M.Pairs)
	out := make([]SweepPoint, len(thresholds))
	for ti, thr := range thresholds {
		out[ti] = SweepPoint{Threshold: thr, Matched: bitmap.New(n)}
	}
	if n == 0 || len(thresholds) == 0 {
		return out, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ranges := core.ShardRanges(n, workers)
	type shardOut struct {
		local *core.Matcher
		bits  []*bitmap.Bits
	}
	outs := make([]shardOut, len(ranges))
	for i, rg := range ranges {
		// Each worker owns a clone of the function so threshold
		// mutation needs no synchronization.
		outs[i] = shardOut{
			local: s.M.ShardEvaluator(rg, s.M.C.CloneForEval()),
			bits:  make([]*bitmap.Bits, len(thresholds)),
		}
	}
	var wg sync.WaitGroup
	for i, rg := range ranges {
		wg.Add(1)
		go func(i int, rg core.Range) {
			defer wg.Done()
			local := outs[i].local
			p := &local.C.Rules[ri].Preds[pj]
			for ti, thr := range thresholds {
				if ctx.Err() != nil {
					return
				}
				p.Threshold = thr
				// Marks-only run on the shard's engine over its range.
				outs[i].bits[ti] = local.MatchBits()
			}
		}(i, rg)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, rg := range ranges {
		for ti := range thresholds {
			out[ti].Matched.OrRange(outs[i].bits[ti], rg.Lo)
		}
		if om, ok := outs[i].local.Memo.(*core.OverlayMemo); ok && s.M.Memo != nil {
			core.AbsorbMemoRange(s.M.Memo, om.Overlay(), rg.Lo)
		}
		s.M.Stats.Add(outs[i].local.Stats)
	}
	if s.dead != nil {
		for ti := range out {
			out[ti].Matched.AndNot(s.dead)
		}
	}
	return out, nil
}

// DefaultSweep returns evenly spaced thresholds across (0,1).
func DefaultSweep(steps int) []float64 {
	if steps < 2 {
		steps = 9
	}
	out := make([]float64, steps)
	for i := range out {
		out[i] = float64(i+1) / float64(steps+1)
	}
	return out
}

// String renders a sweep point compactly.
func (p SweepPoint) String() string {
	return fmt.Sprintf("thr=%.3f matches=%d", p.Threshold, p.Matched.Count())
}
