package incremental

import (
	"fmt"

	"rulematch/internal/bitmap"
)

// SweepPoint is the outcome of evaluating the function with one
// candidate threshold substituted into a predicate.
type SweepPoint struct {
	Threshold float64
	Matched   *bitmap.Bits
}

// SweepThreshold evaluates the matching function once per candidate
// threshold for predicate pj of rule ri, without changing session
// state. Because every required feature is already memoized (or gets
// memoized on first touch), each sweep point costs only lookups — this
// is the kind of instant what-if exploration dynamic memoing exists
// for.
func (s *Session) SweepThreshold(ri, pj int, thresholds []float64) ([]SweepPoint, error) {
	if err := s.checkState(); err != nil {
		return nil, err
	}
	if err := s.checkPred(ri, pj); err != nil {
		return nil, err
	}
	p := &s.M.C.Rules[ri].Preds[pj]
	original := p.Threshold
	defer func() { p.Threshold = original }()

	out := make([]SweepPoint, 0, len(thresholds))
	for _, thr := range thresholds {
		p.Threshold = thr
		matched := bitmap.New(len(s.M.Pairs))
		for pi := range s.M.Pairs {
			// Evaluate with early exit and the warm memo, recording no
			// state (the sweep is a read-only what-if).
			if s.M.EvalPair(pi, nil) {
				matched.Set(pi)
			}
		}
		out = append(out, SweepPoint{Threshold: thr, Matched: matched})
	}
	return out, nil
}

// DefaultSweep returns evenly spaced thresholds across (0,1).
func DefaultSweep(steps int) []float64 {
	if steps < 2 {
		steps = 9
	}
	out := make([]float64, steps)
	for i := range out {
		out[i] = float64(i+1) / float64(steps+1)
	}
	return out
}

// String renders a sweep point compactly.
func (p SweepPoint) String() string {
	return fmt.Sprintf("thr=%.3f matches=%d", p.Threshold, p.Matched.Count())
}
