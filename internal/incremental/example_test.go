package incremental_test

import (
	"fmt"

	"rulematch/internal/core"
	"rulematch/internal/incremental"
	"rulematch/internal/rule"
	"rulematch/internal/sim"
	"rulematch/internal/table"
)

func Example() {
	a := table.MustNew("A", []string{"name"})
	b := table.MustNew("B", []string{"name"})
	a.Append("a1", "matthew richardson")
	a.Append("a2", "john smith")
	b.Append("b1", "matt richardson")
	b.Append("b2", "jon smith")

	f, _ := rule.ParseFunction("rule r1: jaro_winkler(name, name) >= 0.95")
	c, err := core.Compile(f, sim.Standard(), a, b)
	if err != nil {
		panic(err)
	}
	pairs := []table.Pair{{A: 0, B: 0}, {A: 0, B: 1}, {A: 1, B: 0}, {A: 1, B: 1}}

	s := incremental.NewSession(c, pairs)
	s.RunFull() // the one cold run; everything after is incremental
	fmt.Println("initial matches:", s.MatchCount())

	// The threshold is too strict — relax it. Only the pairs whose
	// recorded failure involved this predicate are re-examined, against
	// the warm memo.
	if err := s.RelaxPredicate(0, 0, 0.85); err != nil {
		panic(err)
	}
	fmt.Println("after relaxing:", s.MatchCount())

	// Add a phone-book style fallback rule; only currently unmatched
	// pairs are evaluated, and only against the new rule.
	r, _ := rule.ParseRule("r2: soundex(name, name) >= 0.5")
	if err := s.AddRule(r); err != nil {
		panic(err)
	}
	fmt.Println("after adding r2:", s.MatchCount())
	// Output:
	// initial matches: 1
	// after relaxing: 2
	// after adding r2: 2
}
