// Package incremental implements the incremental matching of Section 6:
// a Session materializes the memo, per-rule match sets and per-predicate
// false sets across runs, and applies rule-set changes — add/tighten
// predicate (Algorithm 7), remove/relax predicate (Algorithm 8), remove
// rule (Algorithm 9), add rule (Algorithm 10) — touching only affected
// pairs.
//
// Invariants maintained across operations (they make the paper's
// "re-evaluate only rules after r" optimization sound):
//
//  1. Ownership: a matched pair is recorded in RuleTrue of exactly one
//     rule — the first rule (in current order) that evaluates true for
//     it — and every earlier rule evaluates false for that pair.
//  2. Witness: for every unmatched pair, every rule has at least one
//     predicate with a recorded false bit that is currently false.
//  3. Soundness: every recorded false bit corresponds to a predicate
//     that is currently false for that pair.
//
// Relaxing or removing a predicate can make an *earlier* rule true for a
// pair currently owned by a later rule; the session migrates ownership
// to preserve invariant 1 (the paper's Algorithms 7/8 as literally
// written would otherwise mis-unmatch such pairs on a later tighten).
package incremental

import (
	"context"
	"fmt"

	"rulematch/internal/bitmap"
	"rulematch/internal/block"
	"rulematch/internal/core"
	"rulematch/internal/rule"
	"rulematch/internal/table"
)

// Session holds matching state alive across incremental rule changes
// and, when a Blocker is installed, incremental record changes (the
// pair set becomes a growable dimension; see AddRecords).
type Session struct {
	M  *core.Matcher
	St *core.MatchState
	// Blocker, when non-nil, is the delta-capable blocking strategy
	// that produced the session's candidate pairs; AddRecords uses it
	// to block appended records incrementally. Sessions without one
	// reject record appends (record deletes never need blocking).
	Blocker block.DeltaBlocker
	// LastOp reports work done by the most recent operation.
	LastOp OpReport

	owners []int32 // per-pair owning rule index, -1 when unmatched
	// baseA/baseB are the table lengths at session creation; records
	// past them arrived through AddRecords. Snapshots persist the
	// appended suffix so recovery can rebuild the grown pair space.
	baseA, baseB int
	// dead marks tombstoned pairs (a deleted record on either side);
	// nil until the first delete. Dead pairs carry no state bits and
	// are skipped by every operation and full run.
	dead *bitmap.Bits
}

// OpReport describes the work performed by one incremental operation.
type OpReport struct {
	Op             string
	PairsExamined  int        // candidate pairs the operation touched
	Stats          core.Stats // engine work during the operation
	OwnershipMoves int        // pairs whose owning rule changed
	PairsAdded     int        // new candidate pairs (record appends)
	PairsRemoved   int        // tombstoned pairs (record deletes)
}

// NewSession compiles nothing itself: pass a compiled function (already
// ordered if desired) and the candidate pairs. The session enables
// dynamic memoing and check-cache-first, the paper's recommended
// configuration for interactive debugging; core options refine the
// rest (engine, workers, value cache, profile representation).
func NewSession(c *core.Compiled, pairs []table.Pair, opts ...core.Option) *Session {
	cfg := core.ConfigFor(c)
	cfg.CheckCacheFirst = true
	for _, o := range opts {
		o(&cfg)
	}
	return NewSessionConfig(c, pairs, cfg)
}

// NewSessionConfig is NewSession with a fully explicit core.Config
// (nothing is defaulted on top of it) — the form the debug server and
// CLIs use after binding flags to a Config.
func NewSessionConfig(c *core.Compiled, pairs []table.Pair, cfg core.Config) *Session {
	return &Session{M: cfg.NewMatcher(c, pairs), baseA: c.A.Len(), baseB: c.B.Len()}
}

// RunFull evaluates the function from scratch (with memoing) and
// materializes the state. Call once before incremental operations; the
// memo persists, so later full runs are cheaper too.
//
// The run goes through the matcher's configured execution engine
// (normally the columnar batch engine), which materializes in static
// predicate order — the recorded false bits are therefore
// deterministic and identical across RunFull, RunFullParallel and
// every block size. Check-cache-first resumes for the per-pair
// incremental operations that follow.
func (s *Session) RunFull() {
	before := s.M.Stats
	s.St = s.M.MatchState()
	s.clearDead()
	s.owners = nil // rebuilt lazily from the fresh state
	s.LastOp = OpReport{Op: "full", PairsExamined: len(s.M.Pairs), Stats: diffStats(before, s.M.Stats)}
}

// clearDead strips tombstoned pairs out of a freshly materialized
// state: full runs evaluate every pair (the engines are oblivious to
// liveness), and a dead pair must carry no state bits.
func (s *Session) clearDead() {
	if s.dead != nil {
		s.St.ClearPairs(s.dead)
	}
}

// RunFullWithMemo is the "precomputation variation" of §7.6: it
// re-evaluates every rule for every pair with early exit and the warm
// memo, rebuilding state, rather than computing the minimal delta.
func (s *Session) RunFullWithMemo() {
	s.RunFull()
	s.LastOp.Op = "full_memo"
}

// RunFullParallel is the sharded materializing run: workers goroutines
// (0 = GOMAXPROCS) each evaluate a contiguous pair range into a shard
// of state plus a range-offset memo, stitched into the same full
// MatchState and memo a serial RunFull produces. This removes the
// paper's slow cold-start iteration (Fig 5C, k=1) from the interactive
// loop; Algorithms 7–10 then operate on the warm merged state exactly
// as after a serial run.
//
// Materialization uses the static predicate order so the recorded
// false bits are deterministic across worker counts (check-cache-first
// resumes for the incremental operations that follow). A warm memo is
// reused read-only by the workers, so parallel re-runs are cheap too.
func (s *Session) RunFullParallel(workers int) {
	_ = s.RunFullParallelCtx(context.Background(), workers)
}

// RunFullParallelCtx is RunFullParallel under a context. On
// cancellation the session is left exactly as before the call — the
// previous materialized state, memo and stats all stand, so
// Verify/VerifyDeep still pass — and ctx's error is returned. Worker
// semantics are core.NormalizeWorkers (0 = GOMAXPROCS).
func (s *Session) RunFullParallelCtx(ctx context.Context, workers int) error {
	before := s.M.Stats
	st, err := s.M.MatchStateParallelCtx(ctx, workers)
	if err != nil {
		return err
	}
	s.St = st
	s.clearDead()
	s.owners = nil // rebuilt lazily from the fresh state
	s.LastOp = OpReport{Op: "full_parallel", PairsExamined: len(s.M.Pairs), Stats: diffStats(before, s.M.Stats)}
	return nil
}

// Run executes a full materializing run with the session's configured
// worker count (core.Config.Workers, carried on the matcher), under a
// context: the cancellable sharded path regardless of count, so a
// request-scoped timeout can stop even a serial-width run between
// chunks. This is the entry point the debug server uses.
func (s *Session) Run(ctx context.Context) error {
	return s.RunFullParallelCtx(ctx, s.M.Workers)
}

// Reconfigure applies the engine-level knobs of cfg to a live session:
// execution engine, block size, worker count, value cache,
// check-cache-first, and the compiled-level profile settings. The memo
// and materialized state are kept — this is how a persist-loaded
// session (always built with defaults) picks up a server or CLI
// configuration without discarding the snapshot's warm state.
// cfg.Memo is intentionally ignored: the incremental algorithms
// require the memo the session already has.
func (s *Session) Reconfigure(cfg core.Config) {
	s.M.Engine = cfg.Engine
	s.M.BlockSize = cfg.BlockSize
	s.M.Workers = cfg.Workers
	s.M.ValueCache = cfg.ValueCache
	s.M.CheckCacheFirst = cfg.CheckCacheFirst
	s.M.C.SetDictProfiles(cfg.DictProfiles)
	s.M.C.SetProfileCache(cfg.ProfileCache)
}

// Matched returns whether pair pi currently matches.
func (s *Session) Matched(pi int) bool { return s.St.Matched.Get(pi) }

// MatchCount returns the current number of matched pairs.
func (s *Session) MatchCount() int { return s.St.Matched.Count() }

func diffStats(before, after core.Stats) core.Stats {
	return core.Stats{
		FeatureComputes: after.FeatureComputes - before.FeatureComputes,
		MemoHits:        after.MemoHits - before.MemoHits,
		ValueCacheHits:  after.ValueCacheHits - before.ValueCacheHits,
		PredEvals:       after.PredEvals - before.PredEvals,
		RuleEvals:       after.RuleEvals - before.RuleEvals,
		PairEvals:       after.PairEvals - before.PairEvals,
	}
}

// checkState guards operations that require a prior RunFull.
func (s *Session) checkState() error {
	if s.St == nil {
		return fmt.Errorf("incremental: RunFull must be called before incremental operations")
	}
	return nil
}

func (s *Session) checkRule(ri int) error {
	if ri < 0 || ri >= len(s.M.C.Rules) {
		return fmt.Errorf("incremental: rule index %d out of range [0,%d)", ri, len(s.M.C.Rules))
	}
	return nil
}

// reEvalAfter evaluates rules after ri for pair pi (whose earlier rules
// are known false) and records ownership if one fires. Returns whether
// the pair matched.
func (s *Session) reEvalAfter(ri, pi int) bool {
	for rj := ri + 1; rj < len(s.M.C.Rules); rj++ {
		if s.M.EvalRule(rj, pi, s.St) {
			s.St.RuleTrue[rj].Set(pi)
			s.St.Matched.Set(pi)
			return true
		}
	}
	return false
}

// evalRuleRecordFalse evaluates every predicate of rule ri for pair pi
// (no early exit within the rule), recording false bits for all failing
// predicates and clearing stale bits for passing ones. Returns whether
// the rule is true. Used after relaxing/removing predicates where the
// old exit point is no longer valid (paper footnote 2).
func (s *Session) evalRuleRecordFalse(ri, pi int) bool {
	r := &s.M.C.Rules[ri]
	ok := true
	for pj := range r.Preds {
		p := &r.Preds[pj]
		v := s.M.FeatureValue(p.Feat, pi)
		if p.Eval(v) {
			if s.St.PredFalse[ri][pj].Get(pi) {
				s.St.PredFalse[ri][pj].Clear(pi)
			}
		} else {
			s.St.PredFalse[ri][pj].Set(pi)
			ok = false
		}
	}
	return ok
}

// MemoryBytes reports the approximate footprint of the materialized
// state: memo plus bitmaps (§7.4).
func (s *Session) MemoryBytes() (memo, bitmaps int64) {
	if s.M.Memo != nil {
		memo = s.M.Memo.Bytes()
	}
	if s.St != nil {
		bitmaps = s.St.Bytes()
	}
	return memo, bitmaps
}

// Verify re-evaluates the function from scratch (bypassing all state)
// and reports the first pair whose incremental match mark disagrees.
// Intended for tests.
func (s *Session) Verify() error {
	if err := s.checkState(); err != nil {
		return err
	}
	fresh := &core.Matcher{C: s.M.C, Pairs: s.M.Pairs}
	for pi := range s.M.Pairs {
		if s.dead != nil && s.dead.Get(pi) {
			if s.St.Matched.Get(pi) {
				return fmt.Errorf("incremental: dead pair %d (%v) is marked matched", pi, s.M.Pairs[pi])
			}
			continue
		}
		want := fresh.EvalPair(pi, nil)
		if got := s.St.Matched.Get(pi); got != want {
			return fmt.Errorf("incremental: pair %d (%v): incremental=%v, fresh=%v",
				pi, s.M.Pairs[pi], got, want)
		}
	}
	return nil
}

// VerifyDeep checks, beyond Verify, the three state invariants the
// incremental algorithms rely on (see the package comment) by
// delegating to core.MatchState.Validate, which also checks bitmap
// shapes. It is O(pairs × predicates) similarity computations; intended
// for tests.
func (s *Session) VerifyDeep() error {
	if err := s.Verify(); err != nil {
		return err
	}
	return s.St.ValidateLive(s.M.C, s.M.Pairs, s.dead)
}

// BaseLens returns the table lengths at session creation (or as
// restored from a snapshot); records past them arrived via AddRecords.
func (s *Session) BaseLens() (baseA, baseB int) { return s.baseA, s.baseB }

// DeadPairs returns the tombstoned-pair bitmap, nil when no pair has
// been tombstoned. Callers must treat it as read-only.
func (s *Session) DeadPairs() *bitmap.Bits { return s.dead }

// NumDead returns the number of tombstoned pairs.
func (s *Session) NumDead() int {
	if s.dead == nil {
		return 0
	}
	return s.dead.Count()
}

// LivePairCount returns the number of live (not tombstoned) candidate
// pairs.
func (s *Session) LivePairCount() int { return len(s.M.Pairs) - s.NumDead() }

// RestoreDataState overwrites the session's data-side bookkeeping —
// base table lengths and the tombstoned-pair bitmap — when rebuilding
// a session from a snapshot. dead may be nil; when non-nil its length
// must equal the pair count.
func (s *Session) RestoreDataState(baseA, baseB int, dead *bitmap.Bits) error {
	if baseA < 0 || baseA > s.M.C.A.Len() || baseB < 0 || baseB > s.M.C.B.Len() {
		return fmt.Errorf("incremental: base lengths (%d,%d) out of range for tables (%d,%d)",
			baseA, baseB, s.M.C.A.Len(), s.M.C.B.Len())
	}
	if dead != nil && dead.Len() != len(s.M.Pairs) {
		return fmt.Errorf("incremental: dead bitmap has %d bits for %d pairs", dead.Len(), len(s.M.Pairs))
	}
	s.baseA, s.baseB = baseA, baseB
	s.dead = dead
	return nil
}

// bindPredicate compiles a source-level predicate against the session's
// tables and similarity library.
func (s *Session) bindPredicate(p rule.Predicate) (core.CompiledPred, error) {
	fi, err := s.M.C.BindFeature(p.Feature)
	if err != nil {
		return core.CompiledPred{}, err
	}
	return core.CompiledPred{Feat: fi, Op: p.Op, Threshold: p.Threshold, Key: p.Key()}, nil
}
