// Package incremental implements the incremental matching of Section 6:
// a Session materializes the memo, per-rule match sets and per-predicate
// false sets across runs, and applies rule-set changes — add/tighten
// predicate (Algorithm 7), remove/relax predicate (Algorithm 8), remove
// rule (Algorithm 9), add rule (Algorithm 10) — touching only affected
// pairs.
//
// Invariants maintained across operations (they make the paper's
// "re-evaluate only rules after r" optimization sound):
//
//  1. Ownership: a matched pair is recorded in RuleTrue of exactly one
//     rule — the first rule (in current order) that evaluates true for
//     it — and every earlier rule evaluates false for that pair.
//  2. Witness: for every unmatched pair, every rule has at least one
//     predicate with a recorded false bit that is currently false.
//  3. Soundness: every recorded false bit corresponds to a predicate
//     that is currently false for that pair.
//
// Relaxing or removing a predicate can make an *earlier* rule true for a
// pair currently owned by a later rule; the session migrates ownership
// to preserve invariant 1 (the paper's Algorithms 7/8 as literally
// written would otherwise mis-unmatch such pairs on a later tighten).
package incremental

import (
	"fmt"

	"rulematch/internal/core"
	"rulematch/internal/rule"
	"rulematch/internal/table"
)

// Session holds matching state alive across incremental rule changes.
type Session struct {
	M  *core.Matcher
	St *core.MatchState
	// LastOp reports work done by the most recent operation.
	LastOp OpReport

	owners []int32 // per-pair owning rule index, -1 when unmatched
}

// OpReport describes the work performed by one incremental operation.
type OpReport struct {
	Op             string
	PairsExamined  int        // candidate pairs the operation touched
	Stats          core.Stats // engine work during the operation
	OwnershipMoves int        // pairs whose owning rule changed
}

// NewSession compiles nothing itself: pass a compiled function (already
// ordered if desired) and the candidate pairs. The session enables
// dynamic memoing and check-cache-first, the paper's recommended
// configuration for interactive debugging.
func NewSession(c *core.Compiled, pairs []table.Pair) *Session {
	m := core.NewMatcher(c, pairs)
	m.CheckCacheFirst = true
	return &Session{M: m}
}

// RunFull evaluates the function from scratch (with memoing) and
// materializes the state. Call once before incremental operations; the
// memo persists, so later full runs are cheaper too.
func (s *Session) RunFull() {
	before := s.M.Stats
	s.St = s.M.Match()
	s.owners = nil // rebuilt lazily from the fresh state
	s.LastOp = OpReport{Op: "full", PairsExamined: len(s.M.Pairs), Stats: diffStats(before, s.M.Stats)}
}

// RunFullWithMemo is the "precomputation variation" of §7.6: it
// re-evaluates every rule for every pair with early exit and the warm
// memo, rebuilding state, rather than computing the minimal delta.
func (s *Session) RunFullWithMemo() {
	s.RunFull()
	s.LastOp.Op = "full_memo"
}

// Matched returns whether pair pi currently matches.
func (s *Session) Matched(pi int) bool { return s.St.Matched.Get(pi) }

// MatchCount returns the current number of matched pairs.
func (s *Session) MatchCount() int { return s.St.Matched.Count() }

func diffStats(before, after core.Stats) core.Stats {
	return core.Stats{
		FeatureComputes: after.FeatureComputes - before.FeatureComputes,
		MemoHits:        after.MemoHits - before.MemoHits,
		PredEvals:       after.PredEvals - before.PredEvals,
		RuleEvals:       after.RuleEvals - before.RuleEvals,
		PairEvals:       after.PairEvals - before.PairEvals,
	}
}

// checkState guards operations that require a prior RunFull.
func (s *Session) checkState() error {
	if s.St == nil {
		return fmt.Errorf("incremental: RunFull must be called before incremental operations")
	}
	return nil
}

func (s *Session) checkRule(ri int) error {
	if ri < 0 || ri >= len(s.M.C.Rules) {
		return fmt.Errorf("incremental: rule index %d out of range [0,%d)", ri, len(s.M.C.Rules))
	}
	return nil
}

// reEvalAfter evaluates rules after ri for pair pi (whose earlier rules
// are known false) and records ownership if one fires. Returns whether
// the pair matched.
func (s *Session) reEvalAfter(ri, pi int) bool {
	for rj := ri + 1; rj < len(s.M.C.Rules); rj++ {
		if s.M.EvalRule(rj, pi, s.St) {
			s.St.RuleTrue[rj].Set(pi)
			s.St.Matched.Set(pi)
			return true
		}
	}
	return false
}

// evalRuleRecordFalse evaluates every predicate of rule ri for pair pi
// (no early exit within the rule), recording false bits for all failing
// predicates and clearing stale bits for passing ones. Returns whether
// the rule is true. Used after relaxing/removing predicates where the
// old exit point is no longer valid (paper footnote 2).
func (s *Session) evalRuleRecordFalse(ri, pi int) bool {
	r := &s.M.C.Rules[ri]
	ok := true
	for pj := range r.Preds {
		p := &r.Preds[pj]
		v := s.M.FeatureValue(p.Feat, pi)
		if p.Eval(v) {
			if s.St.PredFalse[ri][pj].Get(pi) {
				s.St.PredFalse[ri][pj].Clear(pi)
			}
		} else {
			s.St.PredFalse[ri][pj].Set(pi)
			ok = false
		}
	}
	return ok
}

// MemoryBytes reports the approximate footprint of the materialized
// state: memo plus bitmaps (§7.4).
func (s *Session) MemoryBytes() (memo, bitmaps int64) {
	if s.M.Memo != nil {
		memo = s.M.Memo.Bytes()
	}
	if s.St != nil {
		bitmaps = s.St.Bytes()
	}
	return memo, bitmaps
}

// Verify re-evaluates the function from scratch (bypassing all state)
// and reports the first pair whose incremental match mark disagrees.
// Intended for tests.
func (s *Session) Verify() error {
	if err := s.checkState(); err != nil {
		return err
	}
	fresh := &core.Matcher{C: s.M.C, Pairs: s.M.Pairs}
	for pi := range s.M.Pairs {
		want := fresh.EvalPair(pi, nil)
		if got := s.St.Matched.Get(pi); got != want {
			return fmt.Errorf("incremental: pair %d (%v): incremental=%v, fresh=%v",
				pi, s.M.Pairs[pi], got, want)
		}
	}
	return nil
}

// VerifyDeep checks, beyond Verify, the three state invariants the
// incremental algorithms rely on (see the package comment): single
// first-true-rule ownership, witness bits for every unmatched pair and
// rule, and soundness of every recorded false bit. It is O(pairs ×
// predicates) of memo lookups; intended for tests.
func (s *Session) VerifyDeep() error {
	if err := s.Verify(); err != nil {
		return err
	}
	c := s.M.C
	evalPred := func(ri, pj, pi int) bool {
		p := &c.Rules[ri].Preds[pj]
		return p.Eval(c.ComputeFeature(p.Feat, s.M.Pairs[pi]))
	}
	evalRule := func(ri, pi int) bool {
		for pj := range c.Rules[ri].Preds {
			if !evalPred(ri, pj, pi) {
				return false
			}
		}
		return true
	}
	for pi := range s.M.Pairs {
		owners := 0
		for ri := range c.Rules {
			if s.St.RuleTrue[ri].Get(pi) {
				owners++
				// Invariant 1: the owner fires and every earlier rule
				// does not.
				if !evalRule(ri, pi) {
					return fmt.Errorf("incremental: pair %d owned by rule %d which is false", pi, ri)
				}
				for rj := 0; rj < ri; rj++ {
					if evalRule(rj, pi) {
						return fmt.Errorf("incremental: pair %d owned by rule %d but earlier rule %d fires", pi, ri, rj)
					}
				}
			}
			// Invariant 3: recorded false bits are sound.
			for pj := range c.Rules[ri].Preds {
				if s.St.PredFalse[ri][pj].Get(pi) && evalPred(ri, pj, pi) {
					return fmt.Errorf("incremental: pair %d has stale false bit on rule %d predicate %d", pi, ri, pj)
				}
			}
		}
		if s.St.Matched.Get(pi) {
			if owners != 1 {
				return fmt.Errorf("incremental: matched pair %d has %d owners", pi, owners)
			}
			continue
		}
		if owners != 0 {
			return fmt.Errorf("incremental: unmatched pair %d has %d owners", pi, owners)
		}
		// Invariant 2: every rule has a currently-false recorded witness.
		for ri := range c.Rules {
			witness := false
			for pj := range c.Rules[ri].Preds {
				if s.St.PredFalse[ri][pj].Get(pi) && !evalPred(ri, pj, pi) {
					witness = true
					break
				}
			}
			if !witness {
				return fmt.Errorf("incremental: unmatched pair %d lacks a witness in rule %d", pi, ri)
			}
		}
	}
	return nil
}

// bindPredicate compiles a source-level predicate against the session's
// tables and similarity library.
func (s *Session) bindPredicate(p rule.Predicate) (core.CompiledPred, error) {
	fi, err := s.M.C.BindFeature(p.Feature)
	if err != nil {
		return core.CompiledPred{}, err
	}
	return core.CompiledPred{Feat: fi, Op: p.Op, Threshold: p.Threshold, Key: p.Key()}, nil
}
