// Package datagen synthesizes the six Table 2 datasets. Real sources
// (Walmart/Amazon, Yelp/Foursquare, …) are proprietary; the generator
// reproduces their *shape* — table sizes, candidate-pair counts after
// blocking, attribute schemas, and dirty-duplicate structure — with a
// seeded PRNG, so every experiment is deterministic and self-contained.
package datagen

import (
	"fmt"
	"math/rand"

	"rulematch/internal/block"
	"rulematch/internal/table"
)

// Config parameterizes one synthetic dataset.
type Config struct {
	Domain *Domain
	Seed   int64
	// SizeA and SizeB are the table record counts.
	SizeA, SizeB int
	// BlockKeys controls how many distinct blocking buckets exist;
	// expected candidate pairs ≈ SizeA·SizeB/BlockKeys.
	BlockKeys int
	// MatchFrac is the fraction of A records with at least one true
	// match in B.
	MatchFrac float64
	// MaxDups bounds duplicates per matched A record (≥1).
	MaxDups int
	// Intensity scales perturbation probabilities (1 = default noise).
	Intensity float64
}

// Dataset is a generated matching task: two tables, the blocked
// candidate pairs, and gold labels.
type Dataset struct {
	Name   string
	Domain *Domain
	A, B   *table.Table
	// Pairs are the candidate pairs after blocking, sorted by (A,B).
	Pairs []table.Pair
	// Gold maps pair keys of true matches (restricted to candidates).
	Gold map[uint64]bool
	// NumGoldTotal counts true matches before blocking (for recall).
	NumGoldTotal int
	// BlockAttr is the attribute Pairs were blocked on; sessions use it
	// to rebuild the blocker for incremental record appends.
	BlockAttr string
}

// Blocker returns the delta-capable blocker that produced Pairs.
func (d *Dataset) Blocker() block.DeltaBlocker {
	if d.BlockAttr == "" {
		return nil
	}
	return block.AttrEquivalence{Attr: d.BlockAttr}
}

// GoldBits returns the indexes within Pairs that are true matches.
func (d *Dataset) GoldBits() []int {
	var out []int
	for pi, p := range d.Pairs {
		if d.Gold[p.PairKey()] {
			out = append(out, pi)
		}
	}
	return out
}

// Generate builds a dataset from the config.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Domain == nil {
		return nil, fmt.Errorf("datagen: config needs a Domain")
	}
	if cfg.SizeA <= 0 || cfg.SizeB <= 0 {
		return nil, fmt.Errorf("datagen: table sizes must be positive (got %d, %d)", cfg.SizeA, cfg.SizeB)
	}
	if cfg.BlockKeys <= 0 {
		cfg.BlockKeys = 100
	}
	if cfg.MaxDups <= 0 {
		cfg.MaxDups = 1
	}
	if cfg.Intensity <= 0 {
		cfg.Intensity = 1
	}
	dom := cfg.Domain
	rng := rand.New(rand.NewSource(cfg.Seed))
	perturb := NewPerturber(rng, cfg.Intensity)
	lightPerturb := NewPerturber(rng, cfg.Intensity*0.3)

	ta, err := table.New(dom.Name()+"_A", dom.Attrs())
	if err != nil {
		return nil, err
	}
	tb, err := table.New(dom.Name()+"_B", dom.Attrs())
	if err != nil {
		return nil, err
	}

	// Table A: canonical entities.
	entities := make([][]string, cfg.SizeA)
	for i := 0; i < cfg.SizeA; i++ {
		entities[i] = dom.genEntity(rng, rng.Intn(cfg.BlockKeys))
		if err := ta.Append(fmt.Sprintf("a%d", i), entities[i]...); err != nil {
			return nil, err
		}
	}

	// Table B: perturbed duplicates of some A entities plus fresh
	// entities. bRows collects (values, matchedA) before shuffling.
	type bRow struct {
		vals     []string
		matchedA int // -1 for non-matches
	}
	var rows []bRow
	for i := 0; i < cfg.SizeA && len(rows) < cfg.SizeB; i++ {
		if rng.Float64() >= cfg.MatchFrac {
			continue
		}
		dups := 1 + rng.Intn(cfg.MaxDups)
		for d := 0; d < dups && len(rows) < cfg.SizeB; d++ {
			rows = append(rows, bRow{vals: dom.perturbMatch(entities[i], perturb), matchedA: i})
		}
	}
	for len(rows) < cfg.SizeB {
		e := dom.genEntity(rng, rng.Intn(cfg.BlockKeys))
		rows = append(rows, bRow{vals: dom.perturbMatch(e, lightPerturb), matchedA: -1})
	}
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })

	numGold := 0
	gold := make(map[uint64]bool)
	for j, row := range rows {
		if err := tb.Append(fmt.Sprintf("b%d", j), row.vals...); err != nil {
			return nil, err
		}
		if row.matchedA >= 0 {
			numGold++
			gold[table.Pair{A: int32(row.matchedA), B: int32(j)}.PairKey()] = true
		}
	}

	pairs, err := block.AttrEquivalence{Attr: dom.BlockAttr()}.Pairs(ta, tb)
	if err != nil {
		return nil, err
	}
	// Restrict gold to candidates that survived blocking (duplicates
	// preserve the block attribute, so normally all survive).
	surviving := make(map[uint64]bool, len(gold))
	for _, p := range pairs {
		if gold[p.PairKey()] {
			surviving[p.PairKey()] = true
		}
	}
	return &Dataset{
		Name:         dom.Name(),
		Domain:       dom,
		A:            ta,
		B:            tb,
		Pairs:        pairs,
		Gold:         surviving,
		NumGoldTotal: numGold,
		BlockAttr:    dom.BlockAttr(),
	}, nil
}

// FromTables wraps externally loaded tables into a Dataset: candidate
// pairs come from attribute-equivalence blocking on blockAttr, and the
// gold labels (pair keys over record indices) are restricted to the
// surviving candidates. The Domain field is nil for such datasets —
// they carry no generator or feature pool.
func FromTables(name string, a, b *table.Table, blockAttr string, gold map[uint64]bool) (*Dataset, error) {
	pairs, err := block.AttrEquivalence{Attr: blockAttr}.Pairs(a, b)
	if err != nil {
		return nil, err
	}
	surviving := make(map[uint64]bool, len(gold))
	for _, p := range pairs {
		if gold[p.PairKey()] {
			surviving[p.PairKey()] = true
		}
	}
	return &Dataset{
		Name:         name,
		A:            a,
		B:            b,
		Pairs:        pairs,
		Gold:         surviving,
		NumGoldTotal: len(gold),
		BlockAttr:    blockAttr,
	}, nil
}

// StandardConfig returns the Table 2-shaped config for the named domain
// at the given scale (1 = paper-scale sizes; 0.1 = laptop-quick). The
// candidate-pair count scales linearly with the scale factor.
func StandardConfig(dom *Domain, scale float64) Config {
	type shape struct {
		sizeA, sizeB, blockKeys int
		matchFrac               float64
		maxDups                 int
	}
	shapes := map[string]shape{
		// blockKeys ≈ sizeA·sizeB / Table-2 candidate count.
		"products":    {2554, 22074, 193, 0.5, 2},
		"restaurants": {3279, 25376, 3333, 0.4, 2},
		"books":       {3099, 3560, 386, 0.5, 1},
		"breakfast":   {3669, 4165, 208, 0.4, 2},
		"movies":      {5526, 4373, 1363, 0.4, 1},
		"videogames":  {3742, 6739, 1111, 0.4, 1},
	}
	s, ok := shapes[dom.Name()]
	if !ok {
		s = shape{2000, 4000, 200, 0.4, 1}
	}
	if scale <= 0 {
		scale = 1
	}
	scaleInt := func(n int) int {
		v := int(float64(n) * scale)
		if v < 10 {
			v = 10
		}
		return v
	}
	return Config{
		Domain:    dom,
		Seed:      int64(len(dom.Name()))*7919 + 42,
		SizeA:     scaleInt(s.sizeA),
		SizeB:     scaleInt(s.sizeB),
		BlockKeys: scaleInt(s.blockKeys),
		MatchFrac: s.matchFrac,
		MaxDups:   s.maxDups,
		Intensity: 1,
	}
}
