package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"rulematch/internal/rule"
)

// Domain describes one synthetic dataset family: its schema, blocking
// attribute, entity generator, match perturbation, and the feature pool
// analysts choose from (the "Total features" column of Table 2).
type Domain struct {
	name      string
	attrs     []string
	blockAttr string
	// genEntity returns canonical attribute values; blockKey is the
	// entity's block bucket in [0, blockKeys).
	genEntity func(rng *rand.Rand, blockKey int) []string
	// perturbMatch renders the B-side copy of a matching entity.
	perturbMatch func(vals []string, p *Perturber) []string
	pool         []rule.Feature
	sampleRules  string
}

// DomainSpec configures a custom Domain for users generating their own
// synthetic matching tasks (the six built-in domains use the same
// machinery).
type DomainSpec struct {
	// Name identifies the domain.
	Name string
	// Attrs is the schema shared by both generated tables.
	Attrs []string
	// BlockAttr is the attribute blocking groups on; it must be in
	// Attrs, and PerturbMatch must leave it unchanged (or gold matches
	// will not survive blocking).
	BlockAttr string
	// GenEntity produces canonical attribute values; blockKey in
	// [0, Config.BlockKeys) selects the blocking bucket and must be
	// encoded into the BlockAttr value.
	GenEntity func(rng *rand.Rand, blockKey int) []string
	// PerturbMatch renders the B-side copy of a matching entity.
	PerturbMatch func(vals []string, p *Perturber) []string
	// FeaturePool is the total feature pool analysts draw from.
	FeaturePool []rule.Feature
	// SampleRules optionally provides hand-written DSL rules.
	SampleRules string
}

// NewDomain builds a custom domain from a spec.
func NewDomain(spec DomainSpec) (*Domain, error) {
	if spec.Name == "" || len(spec.Attrs) == 0 {
		return nil, fmt.Errorf("datagen: domain needs a name and attributes")
	}
	if spec.GenEntity == nil || spec.PerturbMatch == nil {
		return nil, fmt.Errorf("datagen: domain %q needs GenEntity and PerturbMatch", spec.Name)
	}
	found := false
	for _, a := range spec.Attrs {
		if a == spec.BlockAttr {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("datagen: block attribute %q not in schema %v", spec.BlockAttr, spec.Attrs)
	}
	return &Domain{
		name:         spec.Name,
		attrs:        spec.Attrs,
		blockAttr:    spec.BlockAttr,
		genEntity:    spec.GenEntity,
		perturbMatch: spec.PerturbMatch,
		pool:         spec.FeaturePool,
		sampleRules:  spec.SampleRules,
	}, nil
}

// Name returns the domain name.
func (d *Domain) Name() string { return d.name }

// Attrs returns the schema shared by tables A and B.
func (d *Domain) Attrs() []string { return d.attrs }

// BlockAttr returns the attribute used by the blocking step.
func (d *Domain) BlockAttr() string { return d.blockAttr }

// FeaturePool returns the full feature pool of the domain.
func (d *Domain) FeaturePool() []rule.Feature { return d.pool }

// SampleRules returns a small hand-written DSL rule set for the domain,
// suitable for examples and quick starts.
func (d *Domain) SampleRules() string { return d.sampleRules }

func feat(simName, attrA, attrB string) rule.Feature {
	return rule.Feature{Sim: simName, AttrA: attrA, AttrB: attrB}
}

// featsOn builds one feature per sim name over the same attribute pair.
func featsOn(attrA, attrB string, sims ...string) []rule.Feature {
	out := make([]rule.Feature, len(sims))
	for i, s := range sims {
		out[i] = feat(s, attrA, attrB)
	}
	return out
}

func concat(groups ...[]rule.Feature) []rule.Feature {
	var out []rule.Feature
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}

func pick(rng *rand.Rand, words []string) string { return words[rng.Intn(len(words))] }

// modelNo generates an alphanumeric model number like "SD-4816K".
func modelNo(rng *rand.Rand) string {
	letters := "ABCDEFGHJKLMNPRSTUVWX"
	var b strings.Builder
	b.WriteByte(letters[rng.Intn(len(letters))])
	b.WriteByte(letters[rng.Intn(len(letters))])
	b.WriteByte('-')
	for i := 0; i < 4; i++ {
		b.WriteByte(byte('0' + rng.Intn(10)))
	}
	b.WriteByte(letters[rng.Intn(len(letters))])
	return b.String()
}

func phoneNumber(rng *rand.Rand) string {
	d := make([]byte, 10)
	d[0] = byte('2' + rng.Intn(8))
	for i := 1; i < 10; i++ {
		d[i] = byte('0' + rng.Intn(10))
	}
	return fmt.Sprintf("%s-%s-%s", d[0:3], d[3:6], d[6:10])
}

// Products is the electronics products domain (Walmart/Amazon shape).
func Products() *Domain {
	d := &Domain{
		name:      "products",
		attrs:     []string{"category", "brand", "modelno", "title", "price"},
		blockAttr: "category",
	}
	d.genEntity = func(rng *rand.Rand, blockKey int) []string {
		brand := pick(rng, brandWords)
		adj := pick(rng, productAdjectives)
		noun := pick(rng, productNouns)
		mn := modelNo(rng)
		title := fmt.Sprintf("%s %s %s %s", brand, adj, noun, mn)
		price := fmt.Sprintf("%.2f", 5+rng.Float64()*1995)
		return []string{fmt.Sprintf("cat%d", blockKey), brand, mn, title, price}
	}
	d.perturbMatch = func(v []string, p *Perturber) []string {
		out := append([]string(nil), v...)
		out[1] = p.Typo(p.Abbreviate(out[1], 0.25), 0.2)
		out[2] = p.Casing(p.ModelNoNoise(out[2], 0.3), 0.3)
		out[3] = p.ExtraToken(p.SwapTokens(p.DropToken(p.Typo(out[3], 0.4), 0.3), 0.2), 0.2)
		out[4] = p.NumberJitter(out[4], 0.5, 0.05)
		return out
	}
	d.pool = concat(
		featsOn("modelno", "modelno", "exact_match", "jaro", "jaro_winkler", "levenshtein", "trigram", "soundex", "jaccard_3gram", "monge_elkan"),
		featsOn("modelno", "title", "cosine", "jaccard", "tf_idf", "soft_tf_idf"),
		featsOn("title", "title", "jaccard", "tf_idf", "soft_tf_idf", "cosine", "dice", "overlap", "monge_elkan", "levenshtein", "trigram", "jaccard_3gram"),
		featsOn("brand", "brand", "exact_match", "jaro_winkler", "jaccard", "soundex", "levenshtein"),
		featsOn("brand", "title", "jaccard", "overlap"),
		featsOn("price", "price", "rel_diff", "abs_diff", "exact_match"),
		featsOn("category", "category", "exact_match"),
	)
	d.sampleRules = `rule r1: jaro_winkler(modelno, modelno) >= 0.95 and jaccard(title, title) >= 0.4
rule r2: exact_match(modelno, modelno) >= 1 and jaro_winkler(brand, brand) >= 0.8
rule r3: tf_idf(title, title) >= 0.8 and rel_diff(price, price) >= 0.85`
	return d
}

// Restaurants is the restaurants domain (Yelp/Foursquare shape).
func Restaurants() *Domain {
	d := &Domain{
		name:      "restaurants",
		attrs:     []string{"name", "street", "city", "zip", "phone", "cuisine"},
		blockAttr: "zip",
	}
	d.genEntity = func(rng *rand.Rand, blockKey int) []string {
		var name string
		if rng.Intn(2) == 0 {
			name = pick(rng, firstNames) + "s " + pick(rng, restaurantWords)
		} else {
			name = pick(rng, restaurantWords) + " " + pick(rng, restaurantWords)
		}
		street := fmt.Sprintf("%d %s %s", 1+rng.Intn(9999), pick(rng, streetNames), pick(rng, streetTypes))
		city := pick(rng, cities)
		zip := fmt.Sprintf("%05d", 10000+blockKey)
		return []string{name, street, city, zip, phoneNumber(rng), pick(rng, cuisines)}
	}
	d.perturbMatch = func(v []string, p *Perturber) []string {
		out := append([]string(nil), v...)
		out[0] = p.Casing(p.DropToken(p.Typo(out[0], 0.4), 0.2), 0.15)
		out[1] = p.Typo(p.DropToken(out[1], 0.25), 0.3)
		out[2] = p.Typo(out[2], 0.1)
		out[4] = p.PhoneFormat(out[4], 0.8)
		out[5] = p.Typo(out[5], 0.1)
		return out
	}
	d.pool = concat(
		featsOn("name", "name", "jaccard", "jaro_winkler", "levenshtein", "cosine", "tf_idf", "soft_tf_idf", "monge_elkan", "trigram", "dice", "overlap", "soundex", "jaccard_3gram"),
		featsOn("street", "street", "jaccard", "jaro_winkler", "levenshtein", "tf_idf", "trigram", "cosine", "monge_elkan"),
		featsOn("phone", "phone", "exact_match", "levenshtein", "trigram", "jaccard_3gram"),
		featsOn("zip", "zip", "exact_match", "levenshtein"),
		featsOn("city", "city", "exact_match", "jaro_winkler", "soundex"),
		featsOn("cuisine", "cuisine", "exact_match", "jaccard"),
		featsOn("name", "street", "jaccard", "tf_idf"),
		featsOn("name", "cuisine", "overlap"),
		featsOn("street", "name", "cosine"),
	)
	d.sampleRules = `rule r1: jaro_winkler(name, name) >= 0.85 and levenshtein(street, street) >= 0.5
rule r2: levenshtein(phone, phone) >= 0.8 and jaccard(name, name) >= 0.3
rule r3: tf_idf(name, name) >= 0.75 and exact_match(city, city) >= 1`
	return d
}

// Books is the books domain (Amazon/Barnes & Noble shape).
func Books() *Domain {
	d := &Domain{
		name:      "books",
		attrs:     []string{"title", "author", "publisher", "year", "category"},
		blockAttr: "category",
	}
	d.genEntity = func(rng *rand.Rand, blockKey int) []string {
		pattern := pick(rng, bookPatterns)
		n := strings.Count(pattern, "%s")
		args := make([]interface{}, n)
		for i := range args {
			args[i] = pick(rng, bookSubjects)
		}
		title := fmt.Sprintf(pattern, args...)
		author := pick(rng, firstNames) + " " + pick(rng, lastNames)
		year := fmt.Sprintf("%d", 1950+rng.Intn(70))
		cat := fmt.Sprintf("%s-%d", bookGenres[blockKey%len(bookGenres)], blockKey/len(bookGenres))
		return []string{title, author, pick(rng, publishers), year, cat}
	}
	d.perturbMatch = func(v []string, p *Perturber) []string {
		out := append([]string(nil), v...)
		out[0] = p.Casing(p.DropToken(p.Typo(out[0], 0.35), 0.2), 0.15)
		out[1] = p.Abbreviate(p.Typo(out[1], 0.25), 0.35)
		out[2] = p.Typo(out[2], 0.2)
		out[3] = p.YearJitter(out[3], 0.2)
		return out
	}
	d.pool = concat(
		featsOn("title", "title", "jaccard", "jaro_winkler", "levenshtein", "cosine", "tf_idf", "soft_tf_idf", "monge_elkan", "trigram", "dice", "overlap", "jaccard_3gram"),
		featsOn("author", "author", "jaccard", "jaro_winkler", "levenshtein", "soundex", "monge_elkan", "exact_match", "trigram"),
		featsOn("publisher", "publisher", "exact_match", "jaccard", "jaro_winkler", "levenshtein", "soundex"),
		featsOn("year", "year", "exact_match", "abs_diff", "rel_diff", "levenshtein"),
		featsOn("category", "category", "exact_match", "jaccard"),
		featsOn("title", "author", "jaccard", "overlap", "tf_idf"),
	)
	d.sampleRules = `rule r1: jaro_winkler(title, title) >= 0.9 and soundex(author, author) >= 0.5
rule r2: tf_idf(title, title) >= 0.7 and abs_diff(year, year) >= 1
rule r3: jaccard(title, title) >= 0.6 and jaro_winkler(author, author) >= 0.8`
	return d
}

// Breakfast is the breakfast/grocery products domain (Walmart/Amazon
// shape).
func Breakfast() *Domain {
	d := &Domain{
		name:      "breakfast",
		attrs:     []string{"category", "brand", "name", "size", "flavor"},
		blockAttr: "category",
	}
	d.genEntity = func(rng *rand.Rand, blockKey int) []string {
		brand := pick(rng, groceryBrands)
		noun := pick(rng, groceryNouns)
		flavor := pick(rng, groceryFlavors)
		name := fmt.Sprintf("%s %s %s", brand, flavor, noun)
		size := fmt.Sprintf("%d oz", 8+2*rng.Intn(12))
		return []string{fmt.Sprintf("aisle%d", blockKey), brand, name, size, flavor}
	}
	d.perturbMatch = func(v []string, p *Perturber) []string {
		out := append([]string(nil), v...)
		out[1] = p.Abbreviate(p.Typo(out[1], 0.2), 0.2)
		out[2] = p.ExtraToken(p.SwapTokens(p.DropToken(p.Typo(out[2], 0.35), 0.25), 0.2), 0.15)
		out[3] = p.Typo(out[3], 0.15)
		out[4] = p.Typo(out[4], 0.15)
		return out
	}
	d.pool = concat(
		featsOn("name", "name", "jaccard", "jaro_winkler", "levenshtein", "cosine", "tf_idf", "trigram"),
		featsOn("brand", "brand", "exact_match", "jaro_winkler", "jaccard", "soundex"),
		featsOn("flavor", "flavor", "jaccard", "exact_match", "overlap"),
		featsOn("size", "size", "exact_match", "rel_diff"),
		featsOn("category", "category", "exact_match"),
		featsOn("brand", "name", "overlap", "jaccard"),
	)
	d.sampleRules = `rule r1: jaccard(name, name) >= 0.5 and jaro_winkler(brand, brand) >= 0.85
rule r2: tf_idf(name, name) >= 0.75 and exact_match(size, size) >= 1`
	return d
}

// Movies is the movies domain (Amazon/BestBuy shape).
func Movies() *Domain {
	d := &Domain{
		name:      "movies",
		attrs:     []string{"title", "director", "year", "genre", "studio"},
		blockAttr: "genre",
	}
	d.genEntity = func(rng *rand.Rand, blockKey int) []string {
		title := fmt.Sprintf("%s %s", pick(rng, movieWords), pick(rng, movieNouns))
		if rng.Intn(3) == 0 {
			title = "the " + title
		}
		director := pick(rng, firstNames) + " " + pick(rng, directors)
		year := fmt.Sprintf("%d", 1970+rng.Intn(50))
		genre := fmt.Sprintf("%s-%d", movieGenres[blockKey%len(movieGenres)], blockKey/len(movieGenres))
		return []string{title, director, year, genre, pick(rng, studios)}
	}
	d.perturbMatch = func(v []string, p *Perturber) []string {
		out := append([]string(nil), v...)
		out[0] = p.Casing(p.ExtraToken(p.Typo(out[0], 0.3), 0.2), 0.15)
		out[1] = p.Abbreviate(p.Typo(out[1], 0.2), 0.35)
		out[2] = p.YearJitter(out[2], 0.15)
		out[4] = p.Typo(out[4], 0.2)
		return out
	}
	d.pool = concat(
		featsOn("title", "title", "jaccard", "jaro_winkler", "levenshtein", "cosine", "tf_idf", "soft_tf_idf", "monge_elkan", "trigram", "dice", "overlap", "jaccard_3gram", "exact_match", "soundex"),
		featsOn("director", "director", "jaccard", "jaro_winkler", "levenshtein", "soundex", "exact_match", "monge_elkan", "trigram"),
		featsOn("year", "year", "exact_match", "abs_diff", "rel_diff", "levenshtein"),
		featsOn("genre", "genre", "exact_match", "jaccard", "overlap"),
		featsOn("studio", "studio", "exact_match", "jaccard", "jaro_winkler", "levenshtein", "soundex"),
		featsOn("title", "director", "jaccard", "overlap", "tf_idf", "cosine"),
		featsOn("director", "title", "jaccard", "monge_elkan"),
		featsOn("genre", "title", "overlap"),
	)
	d.sampleRules = `rule r1: jaro_winkler(title, title) >= 0.9 and abs_diff(year, year) >= 1
rule r2: tf_idf(title, title) >= 0.7 and soundex(director, director) >= 0.5`
	return d
}

// VideoGames is the video games domain (TheGamesDB/MobyGames shape).
func VideoGames() *Domain {
	d := &Domain{
		name:      "videogames",
		attrs:     []string{"title", "platform", "publisher", "year", "genre"},
		blockAttr: "platform",
	}
	d.genEntity = func(rng *rand.Rand, blockKey int) []string {
		title := fmt.Sprintf("%s %s %s", pick(rng, gameWords), pick(rng, gameNouns), pick(rng, gameWords))
		if rng.Intn(3) == 0 {
			title += fmt.Sprintf(" %d", 2+rng.Intn(5))
		}
		platform := fmt.Sprintf("%s-%d", platforms[blockKey%len(platforms)], blockKey/len(platforms))
		year := fmt.Sprintf("%d", 1985+rng.Intn(35))
		return []string{title, platform, pick(rng, gamePublishers), year, pick(rng, movieGenres)}
	}
	d.perturbMatch = func(v []string, p *Perturber) []string {
		out := append([]string(nil), v...)
		out[0] = p.Casing(p.SwapTokens(p.DropToken(p.Typo(out[0], 0.3), 0.2), 0.15), 0.15)
		out[2] = p.Typo(out[2], 0.2)
		out[3] = p.YearJitter(out[3], 0.15)
		out[4] = p.Typo(out[4], 0.15)
		return out
	}
	d.pool = concat(
		featsOn("title", "title", "jaccard", "jaro_winkler", "levenshtein", "cosine", "tf_idf", "soft_tf_idf", "monge_elkan", "trigram", "dice", "overlap", "jaccard_3gram"),
		featsOn("platform", "platform", "exact_match", "jaro_winkler", "levenshtein", "jaccard_3gram"),
		featsOn("publisher", "publisher", "exact_match", "jaccard", "jaro_winkler", "soundex", "levenshtein"),
		featsOn("year", "year", "exact_match", "abs_diff", "rel_diff"),
		featsOn("genre", "genre", "exact_match", "jaccard", "overlap"),
		featsOn("title", "publisher", "jaccard", "overlap", "tf_idf"),
		featsOn("title", "platform", "overlap"),
		featsOn("publisher", "title", "cosine"),
		featsOn("title", "genre", "jaccard"),
	)
	d.sampleRules = `rule r1: jaro_winkler(title, title) >= 0.88 and exact_match(publisher, publisher) >= 1
rule r2: tf_idf(title, title) >= 0.7 and abs_diff(year, year) >= 1`
	return d
}

// AllDomains returns the six dataset domains in Table 2 order.
func AllDomains() []*Domain {
	return []*Domain{Products(), Restaurants(), Books(), Breakfast(), Movies(), VideoGames()}
}
