package datagen

import (
	"math/rand"
	"strconv"
	"strings"
)

// Perturber applies noisy edits to attribute values, simulating the
// dirty variation between two real-world data sources (typos, dropped
// tokens, abbreviations, reformatting). Probabilities are per
// opportunity; an Intensity scales them all.
type Perturber struct {
	rng *rand.Rand
	// Intensity scales all perturbation probabilities (1 = defaults).
	Intensity float64
}

// NewPerturber creates a perturber with the given randomness source and
// intensity.
func NewPerturber(rng *rand.Rand, intensity float64) *Perturber {
	return &Perturber{rng: rng, Intensity: intensity}
}

func (p *Perturber) chance(base float64) bool {
	pr := base * p.Intensity
	if pr <= 0 {
		return false
	}
	return p.rng.Float64() < pr
}

// Typo applies up to one random character edit (swap, delete, replace)
// per call with the given base probability.
func (p *Perturber) Typo(s string, base float64) string {
	if len(s) < 3 || !p.chance(base) {
		return s
	}
	b := []byte(s)
	i := 1 + p.rng.Intn(len(b)-2)
	switch p.rng.Intn(3) {
	case 0: // swap
		b[i], b[i-1] = b[i-1], b[i]
	case 1: // delete
		b = append(b[:i], b[i+1:]...)
	default: // replace
		b[i] = byte('a' + p.rng.Intn(26))
	}
	return string(b)
}

// DropToken removes one random token with the given probability if at
// least two tokens remain afterwards.
func (p *Perturber) DropToken(s string, base float64) string {
	toks := strings.Fields(s)
	if len(toks) < 3 || !p.chance(base) {
		return s
	}
	i := p.rng.Intn(len(toks))
	toks = append(toks[:i], toks[i+1:]...)
	return strings.Join(toks, " ")
}

// SwapTokens exchanges two adjacent tokens.
func (p *Perturber) SwapTokens(s string, base float64) string {
	toks := strings.Fields(s)
	if len(toks) < 2 || !p.chance(base) {
		return s
	}
	i := p.rng.Intn(len(toks) - 1)
	toks[i], toks[i+1] = toks[i+1], toks[i]
	return strings.Join(toks, " ")
}

// Abbreviate shortens the first token to its initial plus a period
// ("Western Digital" -> "W. Digital").
func (p *Perturber) Abbreviate(s string, base float64) string {
	toks := strings.Fields(s)
	if len(toks) < 2 || len(toks[0]) < 3 || !p.chance(base) {
		return s
	}
	toks[0] = toks[0][:1] + "."
	return strings.Join(toks, " ")
}

// Casing flips the value to all-lower or all-upper case.
func (p *Perturber) Casing(s string, base float64) string {
	if !p.chance(base) {
		return s
	}
	if p.rng.Intn(2) == 0 {
		return strings.ToLower(s)
	}
	return strings.ToUpper(s)
}

// NumberJitter perturbs a numeric string by up to frac relatively
// (prices) keeping two decimals.
func (p *Perturber) NumberJitter(s string, base, frac float64) string {
	if !p.chance(base) {
		return s
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return s
	}
	v *= 1 + (p.rng.Float64()*2-1)*frac
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// YearJitter moves an integer year by ±1.
func (p *Perturber) YearJitter(s string, base float64) string {
	if !p.chance(base) {
		return s
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return s
	}
	if p.rng.Intn(2) == 0 {
		v++
	} else {
		v--
	}
	return strconv.Itoa(v)
}

// PhoneFormat rewrites a 10-digit phone number into one of several
// common formats, possibly dropping the area code.
func (p *Perturber) PhoneFormat(s string, base float64) string {
	digits := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			digits = append(digits, s[i])
		}
	}
	if len(digits) != 10 || !p.chance(base) {
		return s
	}
	d := string(digits)
	switch p.rng.Intn(4) {
	case 0:
		return d[:3] + "-" + d[3:6] + "-" + d[6:]
	case 1:
		return "(" + d[:3] + ") " + d[3:6] + "-" + d[6:]
	case 2:
		return d[3:6] + " " + d[6:] // drop area code
	default:
		return d
	}
}

// ModelNoNoise perturbs an alphanumeric model number: replaces one
// character or strips a hyphen.
func (p *Perturber) ModelNoNoise(s string, base float64) string {
	if len(s) < 4 || !p.chance(base) {
		return s
	}
	if strings.Contains(s, "-") && p.rng.Intn(2) == 0 {
		return strings.Replace(s, "-", "", 1)
	}
	b := []byte(s)
	i := p.rng.Intn(len(b))
	if b[i] >= '0' && b[i] <= '9' {
		b[i] = byte('0' + p.rng.Intn(10))
	} else {
		b[i] = byte('A' + p.rng.Intn(26))
	}
	return string(b)
}

// ExtraToken appends a filler token such as "new" or "oem".
func (p *Perturber) ExtraToken(s string, base float64) string {
	if !p.chance(base) {
		return s
	}
	fillers := []string{"new", "oem", "genuine", "original", "edition", "series"}
	return s + " " + fillers[p.rng.Intn(len(fillers))]
}
