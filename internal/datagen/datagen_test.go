package datagen

import (
	"math"
	"math/rand"
	"testing"

	"rulematch/internal/rule"
	"rulematch/internal/sim"
)

func smallConfig(dom *Domain) Config {
	return Config{
		Domain:    dom,
		Seed:      7,
		SizeA:     120,
		SizeB:     300,
		BlockKeys: 20,
		MatchFrac: 0.5,
		MaxDups:   2,
		Intensity: 1,
	}
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(smallConfig(Products()))
	if err != nil {
		t.Fatal(err)
	}
	if ds.A.Len() != 120 || ds.B.Len() != 300 {
		t.Fatalf("table sizes = %d, %d", ds.A.Len(), ds.B.Len())
	}
	if len(ds.Pairs) == 0 {
		t.Fatal("no candidate pairs")
	}
	if len(ds.Gold) == 0 {
		t.Fatal("no gold matches")
	}
	// Expected candidate count ≈ sizeA·sizeB/blockKeys; allow wide slack.
	expect := float64(120*300) / 20
	if ratio := float64(len(ds.Pairs)) / expect; ratio < 0.5 || ratio > 2 {
		t.Errorf("candidate pairs = %d, expected about %.0f", len(ds.Pairs), expect)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1, err := Generate(smallConfig(Books()))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(smallConfig(Books()))
	if err != nil {
		t.Fatal(err)
	}
	if d1.A.Len() != d2.A.Len() || len(d1.Pairs) != len(d2.Pairs) || len(d1.Gold) != len(d2.Gold) {
		t.Fatal("same seed produced different datasets")
	}
	for i := range d1.A.Records {
		for j := range d1.A.Attrs {
			if d1.A.Records[i].Values[j] != d2.A.Records[i].Values[j] {
				t.Fatal("record values differ for same seed")
			}
		}
	}
}

func TestGoldSurvivesBlocking(t *testing.T) {
	for _, dom := range AllDomains() {
		ds, err := Generate(smallConfig(dom))
		if err != nil {
			t.Fatalf("%s: %v", dom.Name(), err)
		}
		// Duplicates keep the block attribute, so every injected match
		// must appear among the candidates.
		if len(ds.Gold) != ds.NumGoldTotal {
			t.Errorf("%s: %d of %d gold matches survived blocking",
				dom.Name(), len(ds.Gold), ds.NumGoldTotal)
		}
	}
}

func TestGoldBitsAlignment(t *testing.T) {
	ds, err := Generate(smallConfig(Movies()))
	if err != nil {
		t.Fatal(err)
	}
	bits := ds.GoldBits()
	if len(bits) != len(ds.Gold) {
		t.Fatalf("gold bits = %d, gold = %d", len(bits), len(ds.Gold))
	}
	for _, pi := range bits {
		if !ds.Gold[ds.Pairs[pi].PairKey()] {
			t.Fatal("GoldBits returned a non-gold pair")
		}
	}
}

func TestFeaturePoolsValid(t *testing.T) {
	lib := sim.Standard()
	wantSizes := map[string]int{
		"products":    33,
		"restaurants": 34,
		"books":       32,
		"breakfast":   18,
		"movies":      39,
		"videogames":  32,
	}
	for _, dom := range AllDomains() {
		pool := dom.FeaturePool()
		if got, want := len(pool), wantSizes[dom.Name()]; got != want {
			t.Errorf("%s: pool size %d, want %d (Table 2 shape)", dom.Name(), got, want)
		}
		seen := map[string]bool{}
		attrs := map[string]bool{}
		for _, a := range dom.Attrs() {
			attrs[a] = true
		}
		for _, f := range pool {
			if !lib.Has(f.Sim) {
				t.Errorf("%s: pool uses unknown sim %q", dom.Name(), f.Sim)
			}
			if !attrs[f.AttrA] || !attrs[f.AttrB] {
				t.Errorf("%s: pool feature %v uses unknown attribute", dom.Name(), f)
			}
			if seen[f.Key()] {
				t.Errorf("%s: duplicate pool feature %s", dom.Name(), f.Key())
			}
			seen[f.Key()] = true
		}
		if _, ok := attrs[dom.BlockAttr()]; !ok {
			t.Errorf("%s: block attribute %q not in schema", dom.Name(), dom.BlockAttr())
		}
	}
}

func TestSampleRulesParseAndValidate(t *testing.T) {
	lib := sim.Standard()
	for _, dom := range AllDomains() {
		ds, err := Generate(smallConfig(dom))
		if err != nil {
			t.Fatal(err)
		}
		f, err := rule.ParseFunction(dom.SampleRules())
		if err != nil {
			t.Fatalf("%s sample rules: %v", dom.Name(), err)
		}
		if len(f.Rules) < 2 {
			t.Errorf("%s: only %d sample rules", dom.Name(), len(f.Rules))
		}
		if err := rule.Validate(f, lib, ds.A, ds.B); err != nil {
			t.Errorf("%s sample rules invalid: %v", dom.Name(), err)
		}
	}
}

func TestStandardConfigScaling(t *testing.T) {
	dom := Products()
	c1 := StandardConfig(dom, 1)
	if c1.SizeA != 2554 || c1.SizeB != 22074 {
		t.Errorf("paper-scale sizes = %d, %d", c1.SizeA, c1.SizeB)
	}
	c01 := StandardConfig(dom, 0.1)
	if math.Abs(float64(c01.SizeA)-255.4) > 1 {
		t.Errorf("scaled sizeA = %d", c01.SizeA)
	}
	// Candidate count scales roughly linearly with scale.
	if c01.BlockKeys == 0 {
		t.Error("scaled block keys zero")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("config without domain accepted")
	}
	if _, err := Generate(Config{Domain: Products(), SizeA: 0, SizeB: 5}); err == nil {
		t.Error("zero-size table accepted")
	}
}

func TestPerturberDeterministicEffects(t *testing.T) {
	// Intensity 0 disables every perturbation.
	p := NewPerturber(nil, 0)
	if got := p.Typo("hello world", 1); got != "hello world" {
		t.Errorf("zero-intensity typo changed value: %q", got)
	}
	// Structural perturbations keep minimum shapes.
	p2 := NewPerturber(rand.New(rand.NewSource(1)), 1)
	if got := p2.DropToken("one two", 1); got != "one two" {
		t.Errorf("DropToken on 2 tokens changed value: %q", got)
	}
	if got := p2.PhoneFormat("not a phone", 1); got != "not a phone" {
		t.Errorf("PhoneFormat on non-phone changed value: %q", got)
	}
}

func TestNewDomainCustom(t *testing.T) {
	spec := DomainSpec{
		Name:      "parts",
		Attrs:     []string{"bucket", "code"},
		BlockAttr: "bucket",
		GenEntity: func(rng *rand.Rand, blockKey int) []string {
			return []string{
				"bk" + string(rune('a'+blockKey%26)),
				string(rune('A'+rng.Intn(26))) + string(rune('0'+rng.Intn(10))),
			}
		},
		PerturbMatch: func(vals []string, p *Perturber) []string {
			out := append([]string(nil), vals...)
			out[1] = p.Typo(out[1]+"xx", 0.5)
			return out
		},
		FeaturePool: []rule.Feature{{Sim: "levenshtein", AttrA: "code", AttrB: "code"}},
	}
	dom, err := NewDomain(spec)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Generate(Config{Domain: dom, Seed: 1, SizeA: 40, SizeB: 80, BlockKeys: 5, MatchFrac: 0.5, MaxDups: 1, Intensity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.A.Len() != 40 || ds.B.Len() != 80 || len(ds.Pairs) == 0 || len(ds.Gold) == 0 {
		t.Fatalf("custom domain dataset degenerate: %d/%d records, %d pairs, %d gold",
			ds.A.Len(), ds.B.Len(), len(ds.Pairs), len(ds.Gold))
	}
	if len(ds.Gold) != ds.NumGoldTotal {
		t.Error("custom domain gold lost by blocking; PerturbMatch must keep the block attr")
	}
}

func TestNewDomainValidation(t *testing.T) {
	good := DomainSpec{
		Name:         "x",
		Attrs:        []string{"k"},
		BlockAttr:    "k",
		GenEntity:    func(*rand.Rand, int) []string { return []string{"v"} },
		PerturbMatch: func(v []string, _ *Perturber) []string { return v },
	}
	if _, err := NewDomain(good); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Name = ""
	if _, err := NewDomain(bad); err == nil {
		t.Error("empty name accepted")
	}
	bad = good
	bad.BlockAttr = "nope"
	if _, err := NewDomain(bad); err == nil {
		t.Error("unknown block attribute accepted")
	}
	bad = good
	bad.GenEntity = nil
	if _, err := NewDomain(bad); err == nil {
		t.Error("nil generator accepted")
	}
}
