package datagen

// Word pools used by the domain generators. The goal is realistic token
// frequency structure (shared brand/category vocabulary, discriminative
// model numbers and names), not realistic semantics.

var brandWords = []string{
	"acer", "asus", "belkin", "canon", "dell", "epson", "fujitsu", "garmin",
	"hitachi", "hp", "jvc", "kensington", "kingston", "lenovo", "logitech",
	"netgear", "nikon", "panasonic", "philips", "pioneer", "samsung", "sandisk",
	"sanyo", "sharp", "siemens", "sony", "targus", "toshiba", "tripplite",
	"viewsonic", "vizio", "western digital", "zebra",
}

var productNouns = []string{
	"adapter", "battery", "cable", "camera", "camcorder", "case", "charger",
	"dock", "drive", "earbuds", "enclosure", "headset", "hub", "keyboard",
	"laptop", "lens", "microphone", "monitor", "mouse", "player", "printer",
	"projector", "receiver", "router", "scanner", "speaker", "stand", "stylus",
	"tablet", "television", "tripod", "webcam",
}

var productAdjectives = []string{
	"black", "blue", "compact", "cordless", "digital", "dual", "hd", "mini",
	"portable", "pro", "silver", "slim", "smart", "ultra", "white", "wireless",
}

var groceryBrands = []string{
	"annies", "barbaras", "bobs red mill", "cascadian farm", "cheerios",
	"quaker", "kashi", "kelloggs", "natures path", "post", "weetabix",
	"familia", "ezekiel", "grape nuts", "malt o meal", "mom brands",
}

var groceryNouns = []string{
	"granola", "oatmeal", "cereal", "muesli", "flakes", "crunch", "clusters",
	"squares", "puffs", "shredded wheat", "bran", "oats",
}

var groceryFlavors = []string{
	"almond", "apple cinnamon", "banana", "blueberry", "chocolate", "cinnamon",
	"honey", "maple", "original", "peanut butter", "pumpkin", "raisin",
	"strawberry", "vanilla",
}

var firstNames = []string{
	"alex", "ana", "carlos", "chen", "david", "elena", "fatima", "george",
	"hana", "ivan", "james", "julia", "karen", "luis", "maria", "mohammed",
	"nina", "omar", "peter", "rosa", "sara", "tom", "wei", "yuki",
}

var lastNames = []string{
	"anderson", "brown", "chen", "davis", "garcia", "johnson", "kim", "lee",
	"lopez", "martin", "miller", "nguyen", "patel", "rodriguez", "smith",
	"taylor", "thomas", "walker", "wang", "wilson",
}

var restaurantWords = []string{
	"bistro", "cafe", "cantina", "diner", "grill", "house", "kitchen",
	"lounge", "palace", "pizzeria", "tavern", "trattoria", "garden", "corner",
	"express", "golden", "royal", "little", "blue", "green",
}

var cuisines = []string{
	"american", "chinese", "french", "greek", "indian", "italian", "japanese",
	"korean", "mexican", "thai", "vietnamese", "mediterranean",
}

var cities = []string{
	"madison", "milwaukee", "chicago", "minneapolis", "detroit", "cleveland",
	"columbus", "indianapolis", "stlouis", "kansas city", "omaha", "des moines",
}

var streetNames = []string{
	"main", "oak", "maple", "washington", "lake", "hill", "park", "pine",
	"cedar", "elm", "walnut", "state", "university", "mifflin", "johnson",
}

var streetTypes = []string{"st", "ave", "blvd", "rd", "dr", "ln", "way"}

var bookSubjects = []string{
	"gardens", "rivers", "mountains", "cities", "machines", "numbers",
	"stars", "shadows", "letters", "bridges", "storms", "harvest", "memory",
	"silence", "journeys", "horizons", "islands", "winter", "summer", "voices",
}

var bookPatterns = []string{
	"the %s of %s", "a history of %s", "%s and %s", "beyond the %s",
	"the last %s", "notes on %s", "an introduction to %s", "the secret %s",
}

var publishers = []string{
	"penguin", "harpercollins", "random house", "simon schuster", "macmillan",
	"hachette", "scholastic", "wiley", "oreilly", "springer", "mit press",
	"oxford", "cambridge", "norton", "vintage", "anchor",
}

var bookGenres = []string{
	"fiction", "history", "science", "biography", "mystery", "fantasy",
	"romance", "travel", "cooking", "poetry", "business", "children",
}

var movieWords = []string{
	"midnight", "crimson", "broken", "silent", "burning", "hidden", "lost",
	"final", "iron", "golden", "shadow", "storm", "river", "city", "king",
	"queen", "ghost", "dragon", "winter", "star", "dark", "last",
}

var movieNouns = []string{
	"run", "empire", "protocol", "legacy", "awakening", "chronicles",
	"redemption", "uprising", "paradox", "heist", "code", "horizon",
	"vendetta", "odyssey", "reckoning", "covenant", "frontier", "mirage",
}

var movieGenres = []string{
	"action", "comedy", "drama", "horror", "scifi", "thriller", "animation",
	"documentary", "romance", "western",
}

var studios = []string{
	"paramount", "universal", "warner", "columbia", "mgm", "lionsgate",
	"focus", "a24", "miramax", "dreamworks", "newline", "searchlight",
}

var directors = []string{
	"abrams", "bigelow", "coen", "cuaron", "deltoro", "fincher", "gerwig",
	"jenkins", "kurosawa", "lee", "mann", "nolan", "peele", "scott",
	"spielberg", "tarantino", "villeneuve", "zhao",
}

var gameWords = []string{
	"super", "mega", "turbo", "ultimate", "legend", "quest", "warrior",
	"galaxy", "dungeon", "racing", "fantasy", "tactics", "arena", "assault",
	"rebellion", "dynasty", "frontier", "saga",
}

var gameNouns = []string{
	"heroes", "kingdoms", "champions", "raiders", "hunters", "commanders",
	"racers", "legends", "knights", "wizards", "pilots", "rangers",
}

var platforms = []string{
	"nes", "snes", "genesis", "playstation", "ps2", "ps3", "xbox", "xbox360",
	"gamecube", "wii", "ds", "psp", "pc", "dreamcast", "n64", "gba",
}

var gamePublishers = []string{
	"nintendo", "sega", "capcom", "konami", "squaresoft", "ea", "activision",
	"ubisoft", "atari", "namco", "thq", "midway", "bethesda", "rockstar",
}
