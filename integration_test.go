// Integration tests exercising the whole pipeline end to end:
// generate → block → mine rules → order → match → incremental edits →
// persist → restore, cross-checking against from-scratch evaluation at
// every stage.
package rulematch

import (
	"bytes"
	"math/rand"
	"testing"

	"rulematch/internal/core"
	"rulematch/internal/costmodel"
	"rulematch/internal/datagen"
	"rulematch/internal/estimate"
	"rulematch/internal/incremental"
	"rulematch/internal/order"
	"rulematch/internal/persist"
	"rulematch/internal/quality"
	"rulematch/internal/rule"
	"rulematch/internal/sim"
	"rulematch/internal/table"
)

func TestEndToEndPipeline(t *testing.T) {
	task := benchTask(t) // shared products task from bench_test.go
	c, err := task.CompileSubset(30)
	if err != nil {
		t.Fatal(err)
	}
	// Order with Algorithm 6 using sampled estimates.
	est := estimate.New(c, task.Pairs(), 0.1, 7)
	order.GreedyReduction(c, costmodel.New(c, est))

	// Match with every strategy and cross-check.
	want := (&core.Matcher{C: c, Pairs: task.Pairs()}).MatchRudimentary()
	dm := core.NewMatcher(c, task.Pairs())
	dm.CheckCacheFirst = true
	st := dm.Match()
	par := core.NewMatcher(c, task.Pairs())
	parBits := par.MatchParallel(4)
	adaptive := core.NewMatcher(c, task.Pairs())
	adaptiveBits := order.MatchAdaptive(adaptive, costmodel.New(c, est), 0)
	for pi := range task.Pairs() {
		if st.Matched.Get(pi) != want.Get(pi) {
			t.Fatalf("dm disagrees at pair %d", pi)
		}
		if parBits.Get(pi) != want.Get(pi) {
			t.Fatalf("parallel disagrees at pair %d", pi)
		}
		if adaptiveBits.Get(pi) != want.Get(pi) {
			t.Fatalf("adaptive disagrees at pair %d", pi)
		}
	}

	// Quality against gold is meaningfully better than trivial.
	rep := quality.Evaluate(task.Pairs(), st.Matched, task.DS.Gold, nil)
	if rep.Recall() < 0.5 {
		t.Errorf("mined 30-rule recall = %.3f", rep.Recall())
	}
}

// TestIncrementalSessionOnRealTask runs a long random edit sequence on
// mined rules over the generated products data, verifying the
// incremental state against from-scratch evaluation after every step.
func TestIncrementalSessionOnRealTask(t *testing.T) {
	task := benchTask(t)
	c, err := task.CompileSubset(15)
	if err != nil {
		t.Fatal(err)
	}
	s := incremental.NewSession(c, task.Pairs())
	s.RunFull()
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	pool := task.DS.Domain.FeaturePool()
	steps := 40
	if testing.Short() {
		steps = 10
	}
	for step := 0; step < steps; step++ {
		nRules := len(s.M.C.Rules)
		switch rng.Intn(5) {
		case 0:
			if len(task.Rules) > 15+step {
				if err := s.AddRule(task.Rules[15+step]); err != nil {
					t.Fatal(err)
				}
			}
		case 1:
			if nRules > 5 {
				if err := s.RemoveRule(rng.Intn(nRules)); err != nil {
					t.Fatal(err)
				}
			}
		case 2:
			p := rule.Predicate{Feature: pool[rng.Intn(len(pool))], Op: rule.Ge, Threshold: float64(1+rng.Intn(9)) / 10}
			if err := s.AddPredicate(rng.Intn(nRules), p); err != nil {
				t.Fatal(err)
			}
		case 3:
			ri := rng.Intn(nRules)
			if np := len(s.M.C.Rules[ri].Preds); np > 1 {
				if err := s.RemovePredicate(ri, rng.Intn(np)); err != nil {
					t.Fatal(err)
				}
			}
		default:
			ri := rng.Intn(nRules)
			pj := rng.Intn(len(s.M.C.Rules[ri].Preds))
			if s.M.C.Rules[ri].Preds[pj].Op == rule.Eq {
				continue
			}
			delta := float64(1+rng.Intn(3)) / 20
			if rng.Intn(2) == 0 {
				delta = -delta
			}
			if err := s.SetThreshold(ri, pj, s.M.C.Rules[ri].Preds[pj].Threshold+delta); err != nil {
				continue // invalid direction/no-op rejections are fine
			}
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("step %d (%s): %v", step, s.LastOp.Op, err)
		}
		if step%10 == 9 {
			if err := s.VerifyDeep(); err != nil {
				t.Fatalf("step %d (%s): deep: %v", step, s.LastOp.Op, err)
			}
		}
	}
}

// TestPersistOnRealTask snapshots a mined-rule session mid-debugging
// and checks the restored session is byte-equivalent in behaviour.
func TestPersistOnRealTask(t *testing.T) {
	task := benchTask(t)
	c, err := task.CompileSubset(10)
	if err != nil {
		t.Fatal(err)
	}
	s := incremental.NewSession(c, task.Pairs())
	s.RunFull()
	var buf bytes.Buffer
	if err := persist.Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := persist.Load(&buf, sim.Standard(), task.DS.A, task.DS.B)
	if err != nil {
		t.Fatal(err)
	}
	if !got.St.Matched.Equal(s.St.Matched) {
		t.Fatal("restored match marks differ")
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
	// Continue debugging on the restored session.
	if err := got.AddRule(task.Rules[10]); err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestDatasetRoundTripThroughCSV writes a generated dataset to CSV,
// reads it back, and confirms matching produces identical results.
func TestDatasetRoundTripThroughCSV(t *testing.T) {
	cfg := datagen.StandardConfig(datagen.Books(), 0.02)
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ds.A.WriteCSVFile(dir + "/a.csv"); err != nil {
		t.Fatal(err)
	}
	if err := ds.B.WriteCSVFile(dir + "/b.csv"); err != nil {
		t.Fatal(err)
	}
	a2, err := table.ReadCSVFile(dir+"/a.csv", ds.A.Name)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := table.ReadCSVFile(dir+"/b.csv", ds.B.Name)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := datagen.FromTables(ds.Name, a2, b2, ds.Domain.BlockAttr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds2.Pairs) != len(ds.Pairs) {
		t.Fatalf("blocking after round trip: %d pairs, want %d", len(ds2.Pairs), len(ds.Pairs))
	}
	f, err := rule.ParseFunction(ds.Domain.SampleRules())
	if err != nil {
		t.Fatal(err)
	}
	c1, err := core.Compile(f, sim.Standard(), ds.A, ds.B)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := core.Compile(f, sim.Standard(), a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	m1 := core.NewMatcher(c1, ds.Pairs)
	m2 := core.NewMatcher(c2, ds2.Pairs)
	st1, st2 := m1.Match(), m2.Match()
	if !st1.Matched.Equal(st2.Matched) {
		t.Error("matching differs after CSV round trip")
	}
}
