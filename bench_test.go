// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index). Each benchmark
// exercises the operation the corresponding table/figure times, on a
// scaled-down products task; run cmd/embench for the full printed
// tables and sweeps.
//
//	go test -bench=. -benchmem
package rulematch

import (
	"sync"
	"testing"

	"rulematch/internal/bench"
	"rulematch/internal/core"
	"rulematch/internal/costmodel"
	"rulematch/internal/datagen"
	"rulematch/internal/estimate"
	"rulematch/internal/incremental"
	"rulematch/internal/order"
	"rulematch/internal/rule"
	"rulematch/internal/sim"
)

const benchScale = 0.02

var (
	taskOnce sync.Once
	taskVal  *bench.Task
	taskErr  error
)

// benchTask prepares the shared products task once.
func benchTask(b testing.TB) *bench.Task {
	b.Helper()
	taskOnce.Do(func() {
		taskVal, taskErr = bench.PrepareTask(datagen.Products(), benchScale, 0)
	})
	if taskErr != nil {
		b.Fatal(taskErr)
	}
	return taskVal
}

func compileN(b testing.TB, task *bench.Task, n int) *core.Compiled {
	b.Helper()
	c, err := task.CompileSubset(n)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkTable2Datasets measures dataset generation plus blocking for
// each domain (the substrate behind Table 2).
func BenchmarkTable2Datasets(b *testing.B) {
	for _, dom := range datagen.AllDomains() {
		b.Run(dom.Name(), func(b *testing.B) {
			cfg := datagen.StandardConfig(dom, 0.01)
			for i := 0; i < b.N; i++ {
				if _, err := datagen.Generate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3FeatureCosts measures each Table 3 feature
// configuration on products record pairs — the per-feature μs column.
func BenchmarkTable3FeatureCosts(b *testing.B) {
	task := benchTask(b)
	configs := []rule.Feature{
		{Sim: "exact_match", AttrA: "modelno", AttrB: "modelno"},
		{Sim: "jaro", AttrA: "modelno", AttrB: "modelno"},
		{Sim: "jaro_winkler", AttrA: "modelno", AttrB: "modelno"},
		{Sim: "levenshtein", AttrA: "modelno", AttrB: "modelno"},
		{Sim: "cosine", AttrA: "modelno", AttrB: "title"},
		{Sim: "trigram", AttrA: "modelno", AttrB: "modelno"},
		{Sim: "jaccard", AttrA: "modelno", AttrB: "title"},
		{Sim: "soundex", AttrA: "modelno", AttrB: "modelno"},
		{Sim: "jaccard", AttrA: "title", AttrB: "title"},
		{Sim: "tf_idf", AttrA: "modelno", AttrB: "title"},
		{Sim: "tf_idf", AttrA: "title", AttrB: "title"},
		{Sim: "soft_tf_idf", AttrA: "modelno", AttrB: "title"},
		{Sim: "soft_tf_idf", AttrA: "title", AttrB: "title"},
	}
	c, err := core.Compile(rule.Function{}, sim.Standard(), task.DS.A, task.DS.B)
	if err != nil {
		b.Fatal(err)
	}
	pairs := task.Pairs()
	for _, f := range configs {
		fi, err := c.BindFeature(f)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(f.Key(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.ComputeFeature(fi, pairs[i%len(pairs)])
			}
		})
	}
}

// BenchmarkFig3AStrategies measures one full matching pass per strategy
// at a fixed rule-set size (Figure 3A's per-point cost).
func BenchmarkFig3AStrategies(b *testing.B) {
	task := benchTask(b)
	const nRules = 20
	pairs := task.Pairs()
	b.Run("rudimentary", func(b *testing.B) {
		c := compileN(b, task, nRules)
		for i := 0; i < b.N; i++ {
			m := &core.Matcher{C: c, Pairs: pairs}
			m.MatchRudimentary()
		}
	})
	b.Run("early_exit", func(b *testing.B) {
		c := compileN(b, task, nRules)
		for i := 0; i < b.N; i++ {
			m := &core.Matcher{C: c, Pairs: pairs}
			m.Match()
		}
	})
	b.Run("production_precompute_ee", func(b *testing.B) {
		c := compileN(b, task, nRules)
		used := c.UsedFeatureIndexes()
		for i := 0; i < b.N; i++ {
			m := core.NewMatcher(c, pairs)
			m.Precompute(used)
			m.Match()
		}
	})
	b.Run("full_precompute_ee", func(b *testing.B) {
		c := compileN(b, task, nRules)
		var all []int
		for _, f := range task.DS.Domain.FeaturePool() {
			fi, err := c.BindFeature(f)
			if err != nil {
				b.Fatal(err)
			}
			all = append(all, fi)
		}
		for i := 0; i < b.N; i++ {
			m := core.NewMatcher(c, pairs)
			m.Precompute(all)
			m.Match()
		}
	})
	b.Run("dynamic_memo_ee", func(b *testing.B) {
		c := compileN(b, task, nRules)
		for i := 0; i < b.N; i++ {
			m := core.NewMatcher(c, pairs)
			m.Match()
		}
	})
}

// BenchmarkFig3COrdering measures cold matching passes under the three
// orderings of Figure 3C.
func BenchmarkFig3COrdering(b *testing.B) {
	task := benchTask(b)
	const nRules = 20
	pairs := task.Pairs()
	prep := func(b *testing.B, apply func(*core.Compiled, *costmodel.Model)) *core.Compiled {
		c := compileN(b, task, nRules)
		est := estimate.New(c, pairs, 0.05, 7)
		m := costmodel.New(c, est)
		if apply != nil {
			apply(c, m)
		} else {
			order.Shuffle(c, 7)
		}
		return c
	}
	for _, cfg := range []struct {
		name  string
		apply func(*core.Compiled, *costmodel.Model)
	}{
		{"random", nil},
		{"algorithm5", order.GreedyCost},
		{"algorithm6", order.GreedyReduction},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			c := prep(b, cfg.apply)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := core.NewMatcher(c, pairs)
				m.CheckCacheFirst = true
				m.Match()
			}
		})
	}
}

// BenchmarkFig5ACostModel measures the cost model evaluation itself —
// the estimate the analyst gets "for free" before running (Figure 5A).
func BenchmarkFig5ACostModel(b *testing.B) {
	task := benchTask(b)
	c := compileN(b, task, 20)
	est := estimate.New(c, task.Pairs(), 0.05, 7)
	model := costmodel.New(c, est)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.CostDM()
	}
}

// BenchmarkFig5BScaling measures matching at two candidate-set sizes,
// exposing the linear scaling of Figure 5B.
func BenchmarkFig5BScaling(b *testing.B) {
	task := benchTask(b)
	for _, frac := range []struct {
		name string
		div  int
	}{{"quarter_pairs", 4}, {"all_pairs", 1}} {
		b.Run(frac.name, func(b *testing.B) {
			c := compileN(b, task, len(task.Rules))
			pairs := task.Pairs()[:len(task.Pairs())/frac.div]
			for i := 0; i < b.N; i++ {
				m := core.NewMatcher(c, pairs)
				m.Match()
			}
		})
	}
}

// BenchmarkFig5CAddRule compares incorporating one more rule via the
// fully incremental Algorithm 10 versus a full re-run on the warm memo.
func BenchmarkFig5CAddRule(b *testing.B) {
	task := benchTask(b)
	newSession := func(b *testing.B, n int) *incremental.Session {
		c := compileN(b, task, n)
		s := incremental.NewSession(c, task.Pairs())
		s.RunFull()
		return s
	}
	const base = 20
	extra := task.Rules[base]
	b.Run("fully_incremental", func(b *testing.B) {
		s := newSession(b, base)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.AddRule(extra); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := s.RemoveRule(len(s.M.C.Rules) - 1); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("precompute_variation", func(b *testing.B) {
		s := newSession(b, base)
		if err := s.AddRule(extra); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RunFullWithMemo()
		}
	})
}

// BenchmarkFig6Incremental measures each incremental change type
// (Figure 6 rows); every iteration applies the change and its inverse.
func BenchmarkFig6Incremental(b *testing.B) {
	task := benchTask(b)
	setup := func(b *testing.B) *incremental.Session {
		c := compileN(b, task, 25)
		s := incremental.NewSession(c, task.Pairs())
		s.RunFull()
		return s
	}
	pred := rule.Predicate{
		Feature:   rule.Feature{Sim: "jaro_winkler", AttrA: "brand", AttrB: "brand"},
		Op:        rule.Ge,
		Threshold: 0.6,
	}
	b.Run("add_remove_predicate", func(b *testing.B) {
		s := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.AddPredicate(3, pred); err != nil {
				b.Fatal(err)
			}
			if err := s.RemovePredicate(3, len(s.M.C.Rules[3].Preds)-1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tighten_relax_threshold", func(b *testing.B) {
		s := setup(b)
		ri, pj := 0, 0
		for ri = range s.M.C.Rules {
			if s.M.C.Rules[ri].Preds[0].Op == rule.Ge && s.M.C.Rules[ri].Preds[0].Threshold < 0.8 {
				break
			}
		}
		old := s.M.C.Rules[ri].Preds[pj].Threshold
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.TightenPredicate(ri, pj, old+0.1); err != nil {
				b.Fatal(err)
			}
			if err := s.RelaxPredicate(ri, pj, old); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("remove_add_rule", func(b *testing.B) {
		// Times one full remove+re-add cycle of the last rule; after the
		// first (untimed) move-to-end the state is cyclic, so no rebuild
		// is needed between iterations.
		s := setup(b)
		r := s.M.C.Function().Rules[5]
		if err := s.RemoveRule(5); err != nil {
			b.Fatal(err)
		}
		if err := s.AddRule(r); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.RemoveRule(len(s.M.C.Rules) - 1); err != nil {
				b.Fatal(err)
			}
			if err := s.AddRule(r); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMemoLayout compares array vs hash memo layouts.
func BenchmarkAblationMemoLayout(b *testing.B) {
	task := benchTask(b)
	c := compileN(b, task, 25)
	pairs := task.Pairs()
	b.Run("array", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := &core.Matcher{C: c, Pairs: pairs, Memo: core.NewArrayMemo(len(pairs))}
			m.Match()
		}
	})
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := &core.Matcher{C: c, Pairs: pairs, Memo: core.NewHashMemo()}
			m.Match()
		}
	})
}

// BenchmarkAblationCheckCacheFirst toggles the §5.4.3 runtime
// predicate reordering.
func BenchmarkAblationCheckCacheFirst(b *testing.B) {
	task := benchTask(b)
	c := compileN(b, task, 25)
	pairs := task.Pairs()
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := core.NewMatcher(c, pairs)
				m.CheckCacheFirst = on
				m.Match()
			}
		})
	}
}

// BenchmarkAblationPredicateOrder compares within-rule predicate
// orderings (as-mined vs Lemma 1 vs Lemma 3).
func BenchmarkAblationPredicateOrder(b *testing.B) {
	task := benchTask(b)
	pairs := task.Pairs()
	for _, cfg := range []struct {
		name  string
		apply func(*core.Compiled, *costmodel.Model)
	}{
		{"as_mined", nil},
		{"lemma1", order.PredicatesLemma1},
		{"lemma3", order.PredicatesLemma3},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			c := compileN(b, task, 25)
			if cfg.apply != nil {
				est := estimate.New(c, pairs, 0.05, 7)
				cfg.apply(c, costmodel.New(c, est))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := core.NewMatcher(c, pairs)
				m.Match()
			}
		})
	}
}

// BenchmarkAblationSampleSize measures estimation cost at different
// sample fractions (§7.5: 1% suffices).
func BenchmarkAblationSampleSize(b *testing.B) {
	task := benchTask(b)
	for _, frac := range []struct {
		name string
		f    float64
	}{{"frac_1pct", 0.01}, {"frac_5pct", 0.05}, {"frac_20pct", 0.20}} {
		b.Run(frac.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := compileN(b, task, 25)
				estimate.New(c, task.Pairs(), frac.f, 7)
			}
		})
	}
}

// BenchmarkAblationProfileCache measures matching with and without
// per-record profile caching (cache built outside the timer; its cost
// is amortized across sessions).
func BenchmarkAblationProfileCache(b *testing.B) {
	task := benchTask(b)
	pairs := task.Pairs()
	b.Run("off", func(b *testing.B) {
		c := compileN(b, task, 25)
		for i := 0; i < b.N; i++ {
			m := core.NewMatcher(c, pairs)
			m.Match()
		}
	})
	b.Run("on", func(b *testing.B) {
		c := compileN(b, task, 25)
		c.EnableProfileCache()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := core.NewMatcher(c, pairs)
			m.Match()
		}
	})
}

// BenchmarkAblationValueCache measures the attribute-value-level cache.
func BenchmarkAblationValueCache(b *testing.B) {
	task := benchTask(b)
	pairs := task.Pairs()
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			c := compileN(b, task, 25)
			for i := 0; i < b.N; i++ {
				m := core.NewMatcher(c, pairs)
				m.ValueCache = on
				m.Match()
			}
		})
	}
}
