// Triage: the inspection half of the debugging loop. Mines rules for
// the video-games dataset, then uses the analyst tooling to find what
// to fix: per-rule quality attribution, rule-set lint, a per-pair
// explanation of a false negative, a suggested fix, and a threshold
// sweep to pick the right value.
//
//	go run ./examples/triage
package main

import (
	"fmt"
	"log"
	"os"

	"rulematch/internal/bench"
	"rulematch/internal/datagen"
	"rulematch/internal/explain"
	"rulematch/internal/incremental"
	"rulematch/internal/quality"
	"rulematch/internal/rule"
)

func main() {
	task, err := bench.PrepareTask(datagen.VideoGames(), 0.08, 20)
	if err != nil {
		log.Fatal(err)
	}
	c, err := task.CompileSubset(len(task.Rules))
	if err != nil {
		log.Fatal(err)
	}
	s := incremental.NewSession(c, task.Pairs())
	s.RunFull()
	rep := quality.Evaluate(task.Pairs(), s.St.Matched, task.DS.Gold, nil)
	fmt.Printf("start: %d rules, P=%.3f R=%.3f F1=%.3f\n\n",
		len(c.Rules), rep.Precision(), rep.Recall(), rep.F1())

	// 1. Which rules let noise in? Rank by owned false positives.
	names := make([]string, len(c.Rules))
	for i, r := range c.Rules {
		names[i] = r.Name
	}
	fmt.Println("rules owning false positives:")
	worst := -1
	for i, q := range quality.PerRule(task.Pairs(), names, s.St.RuleTrue, task.DS.Gold) {
		if q.OwnedFP > 0 {
			fmt.Printf("  %-6s owns %3d pairs, %d false positives (precision %.2f)\n",
				q.Name, q.Owned, q.OwnedFP, q.Precision())
			if worst < 0 {
				worst = i
			}
		}
	}

	// 2. Any dead weight in the rule set?
	if findings := rule.Lint(c.Function()); len(findings) > 0 {
		fmt.Println("\nlint findings:")
		for _, fd := range findings {
			fmt.Println("  " + fd.String())
		}
	} else {
		fmt.Println("\nlint: rule set is clean")
	}

	// 3. Explain one missed gold pair and ask for a fix.
	var missed int = -1
	for _, pi := range task.DS.GoldBits() {
		if !s.Matched(pi) {
			missed = pi
			break
		}
	}
	if missed >= 0 {
		fmt.Println("\nexplaining a missed gold pair:")
		e := explain.Pair(c, task.Pairs()[missed])
		e.Format(os.Stdout, task.DS.A, task.DS.B)
		if sg := e.Suggest(); sg != nil {
			fmt.Printf("suggested fix for %s:\n", sg.Rule)
			for _, ch := range sg.Changes {
				fmt.Printf("  %s %s %.4g -> %.4g\n", ch.Feature, ch.Op, ch.OldThreshold, ch.NewThreshold)
			}
		}
	} else {
		// Recall is perfect; explain a false positive instead — why did
		// this non-gold pair match, and through which rule?
		for pi := range task.Pairs() {
			if s.Matched(pi) && !task.DS.Gold[task.Pairs()[pi].PairKey()] {
				fmt.Println("\nno gold pairs missed; explaining a false positive instead:")
				explain.Pair(c, task.Pairs()[pi]).Format(os.Stdout, task.DS.A, task.DS.B)
				break
			}
		}
	}

	// 4. Sweep a threshold of the noisiest rule before committing to it.
	if worst >= 0 {
		fmt.Printf("\nthreshold sweep on %s predicate 0:\n", c.Rules[worst].Name)
		points, err := s.SweepThreshold(worst, 0, incremental.DefaultSweep(5))
		if err != nil {
			log.Fatal(err)
		}
		for _, pt := range points {
			r := quality.Evaluate(task.Pairs(), pt.Matched, task.DS.Gold, nil)
			fmt.Printf("  thr %.2f: %4d matches, F1=%.3f\n", pt.Threshold, pt.Matched.Count(), r.F1())
		}
	}
}
