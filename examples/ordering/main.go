// Ordering: shows how the Section 5 optimizers cut matching time. Mines
// a realistic rule pool for the movies dataset, then matches a moderate
// rule set under random ordering, Theorem 1, Algorithm 5 and
// Algorithm 6, reporting runtime, feature computations, and the cost
// model's predictions. The effect is largest at small-to-moderate rule
// counts; once most features are forced anyway, ordering matters less
// (paper §7.3).
//
//	go run ./examples/ordering
package main

import (
	"fmt"
	"log"
	"time"

	"rulematch/internal/bench"
	"rulematch/internal/core"
	"rulematch/internal/costmodel"
	"rulematch/internal/datagen"
	"rulematch/internal/estimate"
	"rulematch/internal/order"
)

func main() {
	task, err := bench.PrepareTask(datagen.Movies(), 0.1, 0)
	if err != nil {
		log.Fatal(err)
	}
	const numRules = 10
	fmt.Printf("movies task: %d candidate pairs, using %d of %d mined rules\n\n",
		len(task.Pairs()), numRules, len(task.Rules))

	type strategy struct {
		name  string
		apply func(c *core.Compiled, m *costmodel.Model)
	}
	strategies := []strategy{
		{"random", func(c *core.Compiled, m *costmodel.Model) { order.Shuffle(c, 1) }},
		{"theorem 1 (independence)", func(c *core.Compiled, m *costmodel.Model) {
			order.PredicatesLemma3(c, m)
			order.RulesTheorem1(c, m)
		}},
		{"algorithm 5 (greedy cost)", order.GreedyCost},
		{"algorithm 6 (greedy reduction)", order.GreedyReduction},
		{"conditional greedy (§5.4.2)", order.GreedyConditional},
	}

	fmt.Printf("%-32s %10s %10s %16s %12s\n", "ordering", "order ms", "match ms", "feature computes", "model ms")
	for _, s := range strategies {
		c, err := task.CompileSubset(numRules)
		if err != nil {
			log.Fatal(err)
		}
		// Estimate costs and selectivities on a small sample (§5.5).
		est := estimate.New(c, task.Pairs(), 0.05, 7)
		model := costmodel.New(c, est)
		t0 := time.Now()
		s.apply(c, model)
		orderTime := time.Since(t0)
		predicted := model.CostDM() * float64(len(task.Pairs())) * 1000 // ms

		m := core.NewMatcher(c, task.Pairs())
		m.CheckCacheFirst = true
		t0 = time.Now()
		m.Match()
		matchTime := time.Since(t0)
		fmt.Printf("%-32s %10.2f %10.2f %16d %12.2f\n",
			s.name,
			float64(orderTime.Microseconds())/1000,
			float64(matchTime.Microseconds())/1000,
			m.Stats.FeatureComputes,
			predicted)
	}
	fmt.Println("\nthe optimized orderings front-load selective, cheap, memo-warming")
	fmt.Println("predicates and rules, reducing expected cost per pair (Section 5).")
}
