// Products debugging session: the analyst loop of the paper's
// Figure 1, driven programmatically. Generates the synthetic products
// dataset, starts from hand-written rules, inspects quality, and makes
// incremental refinements — each applied in micro/milliseconds thanks to
// dynamic memoing and the Section 6 incremental algorithms.
//
//	go run ./examples/products_debugging
package main

import (
	"fmt"
	"log"
	"time"

	"rulematch/internal/core"
	"rulematch/internal/datagen"
	"rulematch/internal/incremental"
	"rulematch/internal/quality"
	"rulematch/internal/rule"
	"rulematch/internal/sim"
)

func main() {
	// A scaled-down Walmart/Amazon-shaped products task.
	cfg := datagen.StandardConfig(datagen.Products(), 0.03)
	ds, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d + %d records, %d candidate pairs, %d gold matches\n",
		ds.A.Len(), ds.B.Len(), len(ds.Pairs), len(ds.Gold))

	f, err := rule.ParseFunction(ds.Domain.SampleRules())
	if err != nil {
		log.Fatal(err)
	}
	c, err := core.Compile(f, sim.Standard(), ds.A, ds.B)
	if err != nil {
		log.Fatal(err)
	}
	s := incremental.NewSession(c, ds.Pairs)

	report := func(step string, d time.Duration) {
		rep := quality.Evaluate(ds.Pairs, s.St.Matched, ds.Gold, nil)
		fmt.Printf("%-42s %8v  P=%.3f R=%.3f F1=%.3f (%d matches)\n",
			step, d.Round(time.Microsecond), rep.Precision(), rep.Recall(), rep.F1(), s.MatchCount())
	}

	// Iteration 0: first full run (cold memo) — the only slow step.
	start := time.Now()
	s.RunFull()
	report("initial run (3 rules, cold memo)", time.Since(start))

	// Iteration 1: explore a looser title threshold on r1.
	start = time.Now()
	if err := s.RelaxPredicate(0, 1, 0.25); err != nil {
		log.Fatal(err)
	}
	report("relax r1 jaccard(title) 0.4 -> 0.25", time.Since(start))

	// Iteration 2: guard the looser rule with a brand agreement check.
	p, err := rule.ParsePredicate("jaro_winkler(brand, brand) >= 0.75")
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if err := s.AddPredicate(0, p); err != nil {
		log.Fatal(err)
	}
	report("add brand check to r1", time.Since(start))

	// Iteration 3: cover model-number matches the title rules miss.
	r, err := rule.ParseRule("r4: levenshtein(modelno, modelno) >= 0.85 and jaccard(title, title) >= 0.15")
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if err := s.AddRule(r); err != nil {
		log.Fatal(err)
	}
	report("add model-number rule r4", time.Since(start))

	// Iteration 4: try dropping the TF-IDF rule — maybe it's dead weight?
	dropped := s.M.C.Function().Rules[2]
	start = time.Now()
	if err := s.RemoveRule(2); err != nil {
		log.Fatal(err)
	}
	report("drop rule r3 (tf_idf)", time.Since(start))

	// Iteration 5: recall fell — r3 was pulling its weight. Revert.
	// This inspect-regress-revert loop is exactly why each step must be
	// interactive.
	start = time.Now()
	if err := s.AddRule(dropped); err != nil {
		log.Fatal(err)
	}
	report("oops, recall dropped — re-add r3", time.Since(start))

	memo, bitmaps := s.MemoryBytes()
	fmt.Printf("\nstate kept across iterations: %.2f MB memo (%d values), %.2f MB bitmaps\n",
		float64(memo)/1e6, s.M.Memo.Entries(), float64(bitmaps)/1e6)
	fmt.Printf("cumulative engine work: %d feature computes, %d memo hits\n",
		s.M.Stats.FeatureComputes, s.M.Stats.MemoHits)
	fmt.Println("\nfinal rule set:")
	fmt.Println(s.M.C.Function().String())
}
