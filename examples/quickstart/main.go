// Quickstart: match two tiny tables with a DSL rule set using early
// exit + dynamic memoing, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rulematch/internal/core"
	"rulematch/internal/rule"
	"rulematch/internal/sim"
	"rulematch/internal/table"
)

func main() {
	// Two sources of the same people, with dirty values.
	a := table.MustNew("A", []string{"name", "phone"})
	b := table.MustNew("B", []string{"name", "phone"})
	mustAppend(a, "a1", "Matthew Richardson", "206-453-1978")
	mustAppend(a, "a2", "Bob Jones", "608-262-6627")
	mustAppend(b, "b1", "Matt W. Richardson", "453 1978")
	mustAppend(b, "b2", "John Smith", "608-262-1000")
	mustAppend(b, "b3", "Robert Jones", "608 262 6627")

	// The matching function is a DNF of CNF rules over similarity
	// predicates — the paper's B1-style function.
	f, err := rule.ParseFunction(`
rule r1: jaro_winkler(name, name) >= 0.85
rule r2: trigram(phone, phone) >= 0.25 and soundex(name, name) >= 0.3
`)
	if err != nil {
		log.Fatal(err)
	}

	// Compile against the tables (binds features, builds TF-IDF corpora
	// when needed) and match every candidate pair. Blocking is skipped
	// here: with 2x3 records the cross product is the candidate set.
	c, err := core.Compile(f, sim.Standard(), a, b)
	if err != nil {
		log.Fatal(err)
	}
	var pairs []table.Pair
	for i := 0; i < a.Len(); i++ {
		for j := 0; j < b.Len(); j++ {
			pairs = append(pairs, table.Pair{A: int32(i), B: int32(j)})
		}
	}

	m := core.NewMatcher(c, pairs) // dynamic memoing + early exit
	st := m.Match()

	fmt.Println("matches:")
	for pi, p := range pairs {
		if st.Matched.Get(pi) {
			fmt.Printf("  %s (%s) ~ %s (%s)\n",
				a.Records[p.A].ID, a.Records[p.A].Values[0],
				b.Records[p.B].ID, b.Records[p.B].Values[0])
		}
	}
	fmt.Printf("work: %d feature computations, %d memo hits, %d predicate evaluations\n",
		m.Stats.FeatureComputes, m.Stats.MemoHits, m.Stats.PredEvals)

	// The same run without early exit + memoing, for contrast.
	naive := &core.Matcher{C: c, Pairs: pairs}
	naive.MatchRudimentary()
	fmt.Printf("rudimentary baseline would compute %d features (%.1fx more)\n",
		naive.Stats.FeatureComputes,
		float64(naive.Stats.FeatureComputes)/float64(m.Stats.FeatureComputes))
}

func mustAppend(t *table.Table, id string, values ...string) {
	if err := t.Append(id, values...); err != nil {
		log.Fatal(err)
	}
}
