// Session resume: the maintainability half of the paper's goal. An
// analyst's debugging session — matching function, feature memo, and
// the materialized rule/predicate bitmaps — is saved to disk and
// restored, so the next sitting skips the cold start entirely.
//
//	go run ./examples/session_resume
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"rulematch/internal/core"
	"rulematch/internal/datagen"
	"rulematch/internal/incremental"
	"rulematch/internal/persist"
	"rulematch/internal/rule"
	"rulematch/internal/sim"
)

func main() {
	cfg := datagen.StandardConfig(datagen.Books(), 0.2)
	ds, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	f, err := rule.ParseFunction(ds.Domain.SampleRules())
	if err != nil {
		log.Fatal(err)
	}
	lib := sim.Standard()
	c, err := core.Compile(f, lib, ds.A, ds.B)
	if err != nil {
		log.Fatal(err)
	}

	// --- Sitting 1: cold run, one refinement, save. ---
	s := incremental.NewSession(c, ds.Pairs)
	start := time.Now()
	s.RunFull()
	cold := time.Since(start)
	fmt.Printf("sitting 1: cold run over %d pairs: %v, %d matches\n",
		len(ds.Pairs), cold.Round(time.Microsecond), s.MatchCount())
	if err := s.SetThreshold(0, 0, 0.85); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sitting 1: relaxed a threshold, now %d matches\n", s.MatchCount())

	dir, err := os.MkdirTemp("", "rulematch")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "session.gob")
	if err := persist.SaveFile(path, s); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("sitting 1: saved session (%d KB) and went home\n\n", fi.Size()/1024)

	// --- Sitting 2: restore and keep working; no cold start. ---
	restored, err := persist.LoadFile(path, lib, ds.A, ds.B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sitting 2: restored %d matches, %d memoized values\n",
		restored.MatchCount(), restored.M.Memo.Entries())

	start = time.Now()
	restored.RunFullWithMemo() // full re-check is now memo-only
	fmt.Printf("sitting 2: full re-check with restored memo: %v (cold was %v)\n",
		time.Since(start).Round(time.Microsecond), cold.Round(time.Microsecond))

	r, err := rule.ParseRule("r4: jaro_winkler(author, author) >= 0.93 and jaccard(title, title) >= 0.3")
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if err := restored.AddRule(r); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sitting 2: added a rule incrementally in %v, now %d matches\n",
		time.Since(start).Round(time.Microsecond), restored.MatchCount())

	if err := restored.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sitting 2: state verified consistent with from-scratch evaluation")
}
