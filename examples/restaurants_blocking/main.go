// Restaurants blocking: compares blocking strategies (the substrate
// that produces candidate pairs, paper Section 3) on the restaurants
// dataset, then matches the survivors and scores end-to-end quality.
//
//	go run ./examples/restaurants_blocking
package main

import (
	"fmt"
	"log"

	"rulematch/internal/block"
	"rulematch/internal/core"
	"rulematch/internal/datagen"
	"rulematch/internal/quality"
	"rulematch/internal/rule"
	"rulematch/internal/sim"
	"rulematch/internal/table"
)

func main() {
	cfg := datagen.StandardConfig(datagen.Restaurants(), 0.05)
	ds, err := datagen.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Gold pairs over the full cross product, for blocking recall.
	fullGold := make(map[uint64]bool, len(ds.Gold))
	for k := range ds.Gold {
		fullGold[k] = true
	}
	fmt.Printf("restaurants: %d + %d records (%d x %d = %d possible pairs), %d gold matches\n\n",
		ds.A.Len(), ds.B.Len(), ds.A.Len(), ds.B.Len(), ds.A.Len()*ds.B.Len(), len(fullGold))

	f, err := rule.ParseFunction(ds.Domain.SampleRules())
	if err != nil {
		log.Fatal(err)
	}

	blockers := []block.Blocker{
		block.AttrEquivalence{Attr: "zip"},
		block.TokenOverlap{Attr: "name", MinShared: 1, MaxTokenFreq: 200},
		block.Union{
			block.AttrEquivalence{Attr: "zip"},
			block.TokenOverlap{Attr: "name", MinShared: 2},
		},
	}
	fmt.Printf("%-52s %10s %8s %7s %7s %7s\n", "blocker", "candidates", "b-recall", "P", "R", "F1")
	for _, blk := range blockers {
		pairs, err := blk.Pairs(ds.A, ds.B)
		if err != nil {
			log.Fatal(err)
		}
		bRecall := block.Recall(pairs, fullGold)

		c, err := core.Compile(f, sim.Standard(), ds.A, ds.B)
		if err != nil {
			log.Fatal(err)
		}
		m := core.NewMatcher(c, pairs)
		st := m.Match()
		// End-to-end: a gold pair pruned by blocking counts as a miss.
		rep := quality.Evaluate(pairs, st.Matched, fullGold, nil)
		missedByBlocking := countMissed(pairs, fullGold)
		rep.FalseNegatives += missedByBlocking
		fmt.Printf("%-52s %10d %8.3f %7.3f %7.3f %7.3f\n",
			blk.Name(), len(pairs), bRecall, rep.Precision(), rep.Recall(), rep.F1())
	}
	fmt.Println("\nblocking trades candidate volume (matcher work) against recall ceiling;")
	fmt.Println("the union blocker recovers matches that a single key misses.")
}

// countMissed counts gold pairs absent from the candidate set.
func countMissed(pairs []table.Pair, gold map[uint64]bool) int {
	kept := make(map[uint64]bool, len(pairs))
	for _, p := range pairs {
		kept[p.PairKey()] = true
	}
	missed := 0
	for k := range gold {
		if !kept[k] {
			missed++
		}
	}
	return missed
}
