// Package rulematch is an interactive debugger and optimizing engine
// for rule-based entity matching — a from-scratch Go reproduction of
// "Towards Interactive Debugging of Rule-based Entity Matching"
// (Panahi, Wu, Doan, Naughton; EDBT 2017).
//
// The implementation lives under internal/: see internal/core for the
// matching engine (early exit + dynamic memoing), internal/incremental
// for the Section 6 incremental algorithms, internal/order and
// internal/costmodel for the Section 5 ordering optimization, and
// DESIGN.md for the full system inventory. The cmd/ tree provides the
// emdebug (interactive), emmatch (batch), embench (experiments) and
// emgen (dataset generator) tools.
package rulematch
