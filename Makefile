# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test vet fmt bench race fuzz experiments examples cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzParseRule -fuzztime=30s ./internal/rule/

cover:
	$(GO) test -cover ./internal/... ./cmd/...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/embench -exp all -scale 0.02

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/products_debugging
	$(GO) run ./examples/ordering
	$(GO) run ./examples/restaurants_blocking
	$(GO) run ./examples/session_resume
	$(GO) run ./examples/triage
