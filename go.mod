module rulematch

go 1.22
